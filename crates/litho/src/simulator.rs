//! The forward lithography model: Hopkins aerial image (Eq. 1) and the
//! threshold / sigmoid resist (Eq. 2).

use crate::config::{LithoConfig, LithoError, ProcessCorner};
use crate::kernels::KernelSet;
use cfaopc_fft::parallel::par_for;
use cfaopc_fft::simd::accumulate_norm_sqr;
use cfaopc_fft::{BufferPool, Complex, Fft2d, Rfft2d};
use cfaopc_grid::{BitGrid, Grid2D};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Aerial images at the three process corners.
#[derive(Debug, Clone)]
pub struct CornerImages {
    /// Nominal dose / best focus.
    pub nominal: Grid2D<f64>,
    /// Over-dose corner (prints fat).
    pub max: Grid2D<f64>,
    /// Under-dose, defocused corner (prints thin).
    pub min: Grid2D<f64>,
}

impl CornerImages {
    /// Borrow the image for `corner`.
    pub fn get(&self, corner: ProcessCorner) -> &Grid2D<f64> {
        match corner {
            ProcessCorner::Nominal => &self.nominal,
            ProcessCorner::Max => &self.max,
            ProcessCorner::Min => &self.min,
        }
    }
}

/// A reusable lithography simulator: FFT plan plus per-corner SOCS
/// kernel stacks for a fixed grid size.
///
/// # Examples
///
/// Printing an open frame gives unit intensity:
///
/// ```
/// use cfaopc_litho::{LithoConfig, LithoSimulator};
/// use cfaopc_grid::Grid2D;
///
/// # fn main() -> Result<(), cfaopc_litho::LithoError> {
/// let cfg = LithoConfig::fast_test();
/// let sim = LithoSimulator::new(cfg.clone())?;
/// let open = Grid2D::new(cfg.size, cfg.size, 1.0);
/// let aerial = sim.aerial_image(&open, cfaopc_litho::ProcessCorner::Nominal)?;
/// let center = aerial[(cfg.size / 2, cfg.size / 2)];
/// assert!((center - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LithoSimulator {
    config: LithoConfig,
    plan: Fft2d,
    /// Real-input plan for the mask FFT and the gradient's final
    /// `Re[FFT(·)]` — both touch only real data on one side, so the
    /// Hermitian-symmetry plan halves their transform work.
    rplan: Rfft2d,
    nominal: KernelSet,
    max: KernelSet,
    min: KernelSet,
    /// Recycled full-grid complex field buffers for the per-kernel
    /// convolutions (shared with the adjoint pass), so the steady-state
    /// forward model performs no per-call field allocations.
    field_pool: BufferPool<Complex>,
    /// Recycled full-grid real scratch (intensity, dL/dI) for the loss
    /// and gradient path.
    real_pool: BufferPool<f64>,
}

impl LithoSimulator {
    /// Builds the simulator (validates the configuration and generates all
    /// three kernel stacks).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError`] for invalid configurations.
    pub fn new(config: LithoConfig) -> Result<Self, LithoError> {
        config.validate()?;
        let plan = Fft2d::square(config.size).map_err(|_| LithoError::BadGridSize(config.size))?;
        let rplan =
            Rfft2d::square(config.size).map_err(|_| LithoError::BadGridSize(config.size))?;
        Ok(LithoSimulator {
            nominal: KernelSet::generate(&config, ProcessCorner::Nominal)?,
            max: KernelSet::generate(&config, ProcessCorner::Max)?,
            min: KernelSet::generate(&config, ProcessCorner::Min)?,
            plan,
            rplan,
            config,
            field_pool: BufferPool::new(),
            real_pool: BufferPool::new(),
        })
    }

    /// The configuration this simulator was built from.
    #[inline]
    pub fn config(&self) -> &LithoConfig {
        &self.config
    }

    /// Grid edge in pixels.
    #[inline]
    pub fn size(&self) -> usize {
        self.config.size
    }

    /// The kernel stack for `corner`.
    pub fn kernel_set(&self, corner: ProcessCorner) -> &KernelSet {
        match corner {
            ProcessCorner::Nominal => &self.nominal,
            ProcessCorner::Max => &self.max,
            ProcessCorner::Min => &self.min,
        }
    }

    /// The FFT plan (shared with the adjoint pass).
    #[inline]
    pub fn plan(&self) -> &Fft2d {
        &self.plan
    }

    /// The real-input FFT plan (mask spectrum, gradient's final
    /// `Re[FFT(·)]`).
    #[inline]
    pub fn rplan(&self) -> &Rfft2d {
        &self.rplan
    }

    /// The simulator's shared scratch pool for full-grid complex fields
    /// (used by the gradient's adjoint pass as well).
    #[inline]
    pub(crate) fn field_pool(&self) -> &BufferPool<Complex> {
        &self.field_pool
    }

    /// The simulator's shared scratch pool for full-grid real buffers
    /// (per-corner intensity and dL/dI in the loss path).
    #[inline]
    pub(crate) fn real_pool(&self) -> &BufferPool<f64> {
        &self.real_pool
    }

    fn check_mask(&self, mask: &Grid2D<f64>) -> Result<(), LithoError> {
        if mask.width() != self.config.size || mask.height() != self.config.size {
            return Err(LithoError::ShapeMismatch {
                expected: (self.config.size, self.config.size),
                actual: (mask.width(), mask.height()),
            });
        }
        Ok(())
    }

    /// Forward FFT of a real-valued mask via the Hermitian-symmetry
    /// real-input plan (half the row transforms of the complex plan).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] when the mask shape differs
    /// from the simulator grid.
    pub fn mask_spectrum(&self, mask: &Grid2D<f64>) -> Result<Vec<Complex>, LithoError> {
        self.check_mask(mask)?;
        let mut spectrum = vec![Complex::ZERO; mask.as_slice().len()];
        self.rplan.forward_into(mask.as_slice(), &mut spectrum)?;
        Ok(spectrum)
    }

    /// [`LithoSimulator::mask_spectrum`] into a pooled buffer; return it
    /// with `field_pool().put(...)` when done.
    pub(crate) fn mask_spectrum_pooled(
        &self,
        mask: &Grid2D<f64>,
    ) -> Result<Vec<Complex>, LithoError> {
        self.check_mask(mask)?;
        let mut spectrum = self.field_pool.take(mask.as_slice().len());
        self.rplan.forward_into(mask.as_slice(), &mut spectrum)?;
        Ok(spectrum)
    }

    /// Aerial image from a precomputed mask spectrum.
    ///
    /// `I(x) = dose(corner) · Σ_k μ_k |IFFT(H_k ⊙ F)(x)|²` — paper Eq. 1
    /// with the corner's dose folded in. Kernels are evaluated in a single
    /// flat parallel region on the persistent pool.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::BadParameter`] when `spectrum` does not have
    /// `size²` entries (e.g. a spectrum computed on a different grid).
    pub fn aerial_from_spectrum(
        &self,
        spectrum: &[Complex],
        corner: ProcessCorner,
    ) -> Result<Grid2D<f64>, LithoError> {
        let n = self.config.size;
        let set = self.kernel_set(corner);
        let dose = self.config.dose(corner);
        let intensity = self.accumulate_intensity(set, spectrum, dose)?;
        Ok(Grid2D::from_vec(n, n, intensity))
    }

    /// Shared SOCS intensity accumulation:
    /// `scale · Σ_k μ_k |IFFT(H_k ⊙ spectrum)|²`.
    ///
    /// One **flat** parallel region spans the kernels — each task runs its
    /// IFFT serially on its claimed thread (no nested regions to thrash the
    /// pool) in a pooled field buffer (no per-kernel allocations). Kernel
    /// partials merge into the single accumulator through an ordered
    /// turnstile, strictly in kernel order, so the floating-point sum is
    /// **bit-identical** between serial (`CFAOPC_THREADS=1`) and parallel
    /// runs. Claims are handed out in increasing `k`, so turnstile waits
    /// are short in practice.
    pub(crate) fn accumulate_intensity(
        &self,
        set: &KernelSet,
        spectrum: &[Complex],
        scale: f64,
    ) -> Result<Vec<f64>, LithoError> {
        let mut images = self.accumulate_intensity_multi(&[(set, scale)], spectrum)?;
        Ok(images.pop().unwrap_or_default())
    }

    /// Batched variant of [`LithoSimulator::accumulate_intensity`]: all
    /// corners' kernel applications share **one** flat parallel region.
    ///
    /// Task `t` maps to (stack `s`, kernel `k`) in stack-major,
    /// kernel-ascending order, and the turnstile orders merges by the
    /// global task index. Each per-stack accumulator therefore still sees
    /// its own kernels strictly in ascending `k` — the same summation
    /// order as three separate calls — so batching is bit-identical to
    /// the per-corner path while keeping every worker busy across corner
    /// boundaries.
    ///
    /// When `kernel_energy_floor < 1.0` the tail of each (weight-sorted)
    /// stack is skipped per [`KernelSet::active_count`].
    pub(crate) fn accumulate_intensity_multi(
        &self,
        stacks: &[(&KernelSet, f64)],
        spectrum: &[Complex],
    ) -> Result<Vec<Vec<f64>>, LithoError> {
        let n = self.config.size;
        let n2 = n * n;
        if spectrum.len() != n2 {
            return Err(LithoError::BadParameter(format!(
                "spectrum has {} entries but the {n}x{n} grid needs {n2}",
                spectrum.len(),
            )));
        }
        assert!(stacks.len() <= 3, "at most one stack per process corner");
        let floor = self.config.kernel_energy_floor;
        // offsets[s] is the first global task of stack s (prefix sums).
        let mut offsets = [0usize; 4];
        for (s, (set, _)) in stacks.iter().enumerate() {
            offsets[s + 1] = offsets[s] + set.active_count(floor);
        }
        let total = offsets[stacks.len()];
        let images: Vec<Vec<f64>> = stacks.iter().map(|_| vec![0.0f64; n2]).collect();
        // (next task allowed to merge, per-stack accumulators) under one
        // lock.
        let merge = Mutex::new((0usize, images));
        let turnstile = Condvar::new();
        par_for(total, |t| {
            let s = offsets[1..=stacks.len()]
                .iter()
                .position(|&o| t < o)
                .unwrap_or(stacks.len() - 1);
            let (set, scale) = stacks[s];
            let k = t - offsets[s];
            // Catching here keeps a panicking kernel from wedging the
            // turnstile: the turn advances no matter how compute ends.
            let computed = catch_unwind(AssertUnwindSafe(|| {
                let mut field = self.field_pool.take(n2);
                set.apply(k, spectrum, &mut field);
                // Kernel spectra are band-limited to the pupil, so most
                // rows of the product are all-zero: the sparse inverse
                // skips them.
                self.plan
                    .inverse_serial_sparse(&mut field)
                    .expect("plan matches grid by construction");
                field
            }));
            let w = set.kernels()[k].weight * scale;
            let mut guard = merge.lock().unwrap_or_else(|e| e.into_inner());
            while guard.0 != t {
                guard = turnstile.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
            if let Ok(field) = &computed {
                accumulate_norm_sqr(&mut guard.1[s], field, w);
            }
            guard.0 += 1;
            turnstile.notify_all();
            drop(guard);
            match computed {
                Ok(field) => self.field_pool.put(field),
                Err(payload) => resume_unwind(payload),
            }
        });
        let (_, images) = merge.into_inner().unwrap_or_else(|e| e.into_inner());
        Ok(images)
    }

    /// Aerial image of a continuous mask at one corner.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] on shape mismatch.
    pub fn aerial_image(
        &self,
        mask: &Grid2D<f64>,
        corner: ProcessCorner,
    ) -> Result<Grid2D<f64>, LithoError> {
        let spectrum = self.mask_spectrum(mask)?;
        self.aerial_from_spectrum(&spectrum, corner)
    }

    /// Aerial images at all three corners, sharing one mask FFT and one
    /// batched parallel region across every corner's kernels.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] on shape mismatch.
    pub fn aerial_corners(&self, mask: &Grid2D<f64>) -> Result<CornerImages, LithoError> {
        let n = self.config.size;
        let spectrum = self.mask_spectrum_pooled(mask)?;
        let stacks = [
            (&self.nominal, self.config.dose(ProcessCorner::Nominal)),
            (&self.max, self.config.dose(ProcessCorner::Max)),
            (&self.min, self.config.dose(ProcessCorner::Min)),
        ];
        let mut images = self.accumulate_intensity_multi(&stacks, &spectrum)?;
        self.field_pool.put(spectrum);
        let min = Grid2D::from_vec(n, n, images.pop().unwrap_or_default());
        let max = Grid2D::from_vec(n, n, images.pop().unwrap_or_default());
        let nominal = Grid2D::from_vec(n, n, images.pop().unwrap_or_default());
        Ok(CornerImages { nominal, max, min })
    }

    /// Hard-threshold resist (paper Eq. 2): `Z = 1` where `I > I_th`.
    pub fn resist_binary(&self, aerial: &Grid2D<f64>) -> BitGrid {
        BitGrid::from_threshold(aerial, self.config.threshold)
    }

    /// Relaxed sigmoid resist used inside losses:
    /// `Z = 1 / (1 + e^{-θ_z (I - I_th)})`.
    pub fn resist_sigmoid(&self, aerial: &Grid2D<f64>) -> Grid2D<f64> {
        let th = self.config.threshold;
        let steep = self.config.resist_steepness;
        aerial.map(|&i| sigmoid_sat(steep * (i - th)))
    }

    /// Prints a binary mask at one corner: aerial image + hard resist.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] on shape mismatch.
    pub fn print(&self, mask: &BitGrid, corner: ProcessCorner) -> Result<BitGrid, LithoError> {
        let aerial = self.aerial_image(&mask.to_real(), corner)?;
        Ok(self.resist_binary(&aerial))
    }

    /// Prints a binary mask at all corners (one FFT of the mask).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::ShapeMismatch`] on shape mismatch.
    pub fn print_corners(&self, mask: &BitGrid) -> Result<[BitGrid; 3], LithoError> {
        let images = self.aerial_corners(&mask.to_real())?;
        Ok([
            self.resist_binary(&images.nominal),
            self.resist_binary(&images.max),
            self.resist_binary(&images.min),
        ])
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Saturation threshold for [`sigmoid_sat`].
///
/// For `x ≥ 37`, `e^{-x} < 2^{-53} = ulp(1.0)/2`, so `1.0 + e^{-x}`
/// rounds to exactly `1.0` and `sigmoid(x) == 1.0` bit-for-bit. 40 keeps
/// a safety margin over that bound while still short-circuiting the vast
/// majority of saturated resist pixels.
pub const SIGMOID_SAT: f64 = 40.0;

/// [`sigmoid`] with an exact saturation shortcut: for `x ≥`
/// [`SIGMOID_SAT`] the `exp` call is skipped and `1.0` returned directly,
/// which is bit-identical to evaluating the full expression (see the
/// constant's docs for the rounding argument). Steep resist models push
/// most in-feature pixels deep into saturation, so this removes the bulk
/// of the `exp` calls from the loss path.
#[inline]
pub fn sigmoid_sat(x: f64) -> f64 {
    if x >= SIGMOID_SAT {
        1.0
    } else {
        sigmoid(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_rect, Rect};

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::fast_test()).unwrap()
    }

    fn square_mask(n: usize, half: i32) -> BitGrid {
        let c = n as i32 / 2;
        let mut m = BitGrid::new(n, n);
        fill_rect(&mut m, Rect::new(c - half, c - half, c + half, c + half));
        m
    }

    #[test]
    fn wrong_length_spectrum_is_a_typed_error() {
        // Regression for the typed error path that replaced the old
        // `assert_eq!(spectrum.len(), n2)`: a spectrum computed on a
        // different grid must surface as `LithoError::BadParameter`, not
        // a panic.
        let s = sim();
        let short = vec![Complex::from_re(0.0); 7];
        let err = s
            .aerial_from_spectrum(&short, ProcessCorner::Nominal)
            .unwrap_err();
        assert!(matches!(err, LithoError::BadParameter(_)), "got {err:?}");
        let msg = err.to_string();
        assert!(
            msg.contains('7'),
            "message should name the bad length: {msg}"
        );
    }

    #[test]
    fn empty_mask_prints_nothing() {
        let s = sim();
        let n = s.size();
        let printed = s
            .print(&BitGrid::new(n, n), ProcessCorner::Nominal)
            .unwrap();
        assert!(printed.is_clear());
    }

    #[test]
    fn open_frame_prints_everywhere() {
        let s = sim();
        let n = s.size();
        let mut open = BitGrid::new(n, n);
        fill_rect(&mut open, Rect::new(0, 0, n as i32, n as i32));
        let aerial = s
            .aerial_image(&open.to_real(), ProcessCorner::Nominal)
            .unwrap();
        for &v in aerial.as_slice() {
            assert!((v - 1.0).abs() < 1e-9, "open frame intensity {v}");
        }
        assert_eq!(s.resist_binary(&aerial).count_ones(), n * n);
    }

    #[test]
    fn large_square_prints_smaller_blurred() {
        let s = sim();
        let n = s.size();
        // 64px grid @32nm/px (fast_test tile 2048): 24px square = 768nm.
        let mask = square_mask(n, 12);
        let printed = s.print(&mask, ProcessCorner::Nominal).unwrap();
        assert!(printed.count_ones() > 0, "large feature must print");
        // The aerial image is band-limited: intensity at center is high,
        // far corner is dark.
        let aerial = s
            .aerial_image(&mask.to_real(), ProcessCorner::Nominal)
            .unwrap();
        assert!(aerial[(n / 2, n / 2)] > 0.5);
        assert!(aerial[(2, 2)] < 0.1);
    }

    #[test]
    fn dose_corners_are_monotonic() {
        let s = sim();
        let mask = square_mask(s.size(), 12);
        let [nom, max, min] = s.print_corners(&mask).unwrap();
        // Same focus for Max; higher dose ⇒ superset of nominal print.
        for p in nom.ones() {
            assert!(max.at(p), "max-dose print must cover nominal at {p}");
        }
        assert!(max.count_ones() >= nom.count_ones());
        assert!(min.count_ones() <= nom.count_ones());
    }

    #[test]
    fn defocus_softens_the_image() {
        // Isolate defocus: set both doses to 1.0 and compare corner images.
        let cfg = LithoConfig {
            dose_max: 1.0,
            dose_min: 1.0,
            defocus_nm: 80.0,
            ..LithoConfig::fast_test()
        };
        let s = LithoSimulator::new(cfg).unwrap();
        let n = s.size();
        let mask = square_mask(n, 4);
        let images = s.aerial_corners(&mask.to_real()).unwrap();
        let peak_nom = images
            .nominal
            .as_slice()
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let peak_min = images.min.as_slice().iter().cloned().fold(0.0f64, f64::max);
        assert!(
            peak_min < peak_nom,
            "defocus must lower the peak: {peak_min} vs {peak_nom}"
        );
    }

    #[test]
    fn aerial_is_nonnegative_and_finite() {
        let s = sim();
        let mask = square_mask(s.size(), 6);
        let aerial = s.aerial_image(&mask.to_real(), ProcessCorner::Min).unwrap();
        for &v in aerial.as_slice() {
            assert!(v >= 0.0 && v.is_finite());
        }
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let s = sim();
        let wrong = Grid2D::new(16, 16, 0.0);
        assert!(matches!(
            s.aerial_image(&wrong, ProcessCorner::Nominal),
            Err(LithoError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn sigmoid_resist_brackets_binary() {
        let s = sim();
        let mask = square_mask(s.size(), 10);
        let aerial = s
            .aerial_image(&mask.to_real(), ProcessCorner::Nominal)
            .unwrap();
        let soft = s.resist_sigmoid(&aerial);
        let hard = s.resist_binary(&aerial);
        for (p, &z) in soft.iter() {
            assert!((0.0..=1.0).contains(&z));
            if hard.at(p) {
                assert!(z > 0.5);
            } else {
                assert!(z <= 0.5 + 1e-12);
            }
        }
    }

    #[test]
    fn sigmoid_function_properties() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(30.0) > 0.999);
        assert!(sigmoid(-30.0) < 0.001);
        assert!((sigmoid(-700.0)).is_finite());
        assert!((sigmoid(700.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_sat_is_bit_identical_to_sigmoid() {
        // Sweep across the saturation boundary (including well past it):
        // the shortcut must never change a single bit.
        for i in 0..4000 {
            let x = f64::from(i).mul_add(0.05, -50.0);
            assert_eq!(sigmoid_sat(x).to_bits(), sigmoid(x).to_bits(), "x = {x}");
        }
        assert_eq!(sigmoid_sat(f64::INFINITY).to_bits(), 1.0f64.to_bits());
        assert_eq!(sigmoid_sat(SIGMOID_SAT).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn batched_corners_match_per_corner_accumulation() {
        // aerial_corners routes through the batched multi-stack region;
        // aerial_from_spectrum through the single-stack path. They must
        // agree bit-for-bit.
        let s = sim();
        let mask = square_mask(s.size(), 9).to_real();
        let batched = s.aerial_corners(&mask).unwrap();
        let spectrum = s.mask_spectrum(&mask).unwrap();
        for corner in [
            ProcessCorner::Nominal,
            ProcessCorner::Max,
            ProcessCorner::Min,
        ] {
            let single = s.aerial_from_spectrum(&spectrum, corner).unwrap();
            let both = single.as_slice().iter().zip(batched.get(corner).as_slice());
            for (a, b) in both {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn translation_equivariance() {
        // Shifting the mask shifts the print (cyclically) — a property of
        // the FFT-based convolution model.
        let s = sim();
        let n = s.size();
        let mask = square_mask(n, 6);
        let printed = s.print(&mask, ProcessCorner::Nominal).unwrap();
        let mut shifted = BitGrid::new(n, n);
        for p in mask.ones() {
            shifted.set(((p.x as usize) + 8) % n, p.y as usize, true);
        }
        let printed_shifted = s.print(&shifted, ProcessCorner::Nominal).unwrap();
        assert_eq!(printed.count_ones(), printed_shifted.count_ones());
        for p in printed.ones() {
            assert!(printed_shifted.get(((p.x as usize) + 8) % n, p.y as usize));
        }
    }
}
