//! Manual adjoint of the lithography forward model.
//!
//! There is no autodiff here: this module implements, by hand, the exact
//! gradient of the relaxed ILT loss (paper Eq. 6)
//!
//! ```text
//! L = w_l2 · ‖Z_nom − T‖² + w_pvb · (‖Z_max − T‖² + ‖Z_min − T‖²)
//! Z_c = σ(θ_z (I_c − I_th)),   I_c = dose_c · Σ_k μ_k |IFFT(H_k ⊙ FFT(M))|²
//! ```
//!
//! with respect to every pixel of the continuous mask `M`. Derivation
//! (per corner, per kernel, with `A_k = IFFT(H_k ⊙ F)`, `F = FFT(M)`):
//!
//! ```text
//! ∂L/∂I        = 2 w_c (Z − T) · θ_z Z (1 − Z)
//! ∂I/∂|A_k|²   = dose_c μ_k
//! ∂L/∂M        = Σ_k 2 dose_c μ_k · Re[ FFT( H_k ⊙ IFFT( G ⊙ conj(A_k) ) ) ]
//! ```
//!
//! where `G = ∂L/∂I` and the outer `FFT` is shared across kernels and
//! corners (the spectral contributions are accumulated sparsely on the
//! pupil support first, then transformed once).

use crate::config::{LithoError, NonFiniteTerm, ProcessCorner};
use crate::simulator::{sigmoid_sat, LithoSimulator};
use cfaopc_fft::parallel::par_map;
use cfaopc_fft::simd::{accumulate_norm_sqr, conj_mul_real};
use cfaopc_fft::Complex;
use cfaopc_grid::Grid2D;

/// Weights of the two loss terms (paper Eq. 6 uses `L = L2 + L_pvb`,
/// i.e. both 1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LossWeights {
    /// Weight of the nominal-corner squared-L2 term.
    pub l2: f64,
    /// Weight of the process-variation term (outer + inner corners).
    pub pvb: f64,
}

impl Default for LossWeights {
    fn default() -> Self {
        LossWeights { l2: 1.0, pvb: 1.0 }
    }
}

/// Relaxed loss values from one forward evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct LossValues {
    /// `‖Z_nom − T‖²` with the sigmoid resist.
    pub l2: f64,
    /// `‖Z_max − T‖² + ‖Z_min − T‖²` with the sigmoid resist.
    pub pvb: f64,
    /// Weighted total.
    pub total: f64,
}

impl LossValues {
    /// The first non-finite loss term, if any — the loss half of the
    /// numerical-health guard (`l2`, then `pvb`, then `total`).
    pub fn non_finite_term(&self) -> Option<NonFiniteTerm> {
        if !self.l2.is_finite() {
            Some(NonFiniteTerm::LossL2)
        } else if !self.pvb.is_finite() {
            Some(NonFiniteTerm::LossPvb)
        } else if !self.total.is_finite() {
            Some(NonFiniteTerm::LossTotal)
        } else {
            None
        }
    }
}

fn corner_plan(weights: LossWeights) -> [(ProcessCorner, f64); 3] {
    [
        (ProcessCorner::Nominal, weights.l2),
        (ProcessCorner::Max, weights.pvb),
        (ProcessCorner::Min, weights.pvb),
    ]
}

/// Evaluates the relaxed loss **and** its exact gradient with respect to
/// the continuous mask.
///
/// The returned gradient has the same shape as `mask`; descending it is
/// the pixel-level ILT step (paper §4.1), and chaining it through the
/// circle-to-pixel transformation is the circle-level step (paper §4.2,
/// Eq. 16).
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] when `mask` or `target` do not
/// match the simulator grid.
pub fn loss_and_gradient(
    sim: &LithoSimulator,
    mask: &Grid2D<f64>,
    target: &Grid2D<f64>,
    weights: LossWeights,
) -> Result<(LossValues, Grid2D<f64>), LithoError> {
    let mut grad = Grid2D::new(sim.size(), sim.size(), 0.0);
    let values = loss_and_gradient_into(sim, mask, target, weights, &mut grad)?;
    Ok((values, grad))
}

/// [`loss_and_gradient`] into a caller-owned gradient grid.
///
/// All full-grid scratch (mask spectrum, spectral accumulator, per-corner
/// intensity and dL/dI) comes from the simulator's buffer pools, and
/// `grad` is fully overwritten (reallocated only on a grid-size change) —
/// so a caller looping over iterations with a persistent `grad` performs
/// **zero steady-state heap allocations** here. [`loss_and_gradient`] is
/// the convenience wrapper that allocates a fresh grid per call.
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] when `mask` or `target` do not
/// match the simulator grid.
pub fn loss_and_gradient_into(
    sim: &LithoSimulator,
    mask: &Grid2D<f64>,
    target: &Grid2D<f64>,
    weights: LossWeights,
    grad: &mut Grid2D<f64>,
) -> Result<LossValues, LithoError> {
    let _span = cfaopc_trace::span("litho.loss_and_gradient");
    let n = sim.size();
    let n2 = n * n;
    if target.width() != n || target.height() != n {
        return Err(LithoError::ShapeMismatch {
            expected: (n, n),
            actual: (target.width(), target.height()),
        });
    }
    let spectrum = sim.mask_spectrum_pooled(mask)?;
    let cfg = sim.config();
    let theta = cfg.resist_steepness;
    let th = cfg.threshold;
    let floor = cfg.kernel_energy_floor;

    let corners = corner_plan(weights);
    // Global forward task index: stack-major (corner order), kernel-
    // ascending within a stack; `fwd_offsets[c]` is corner c's first task.
    // Stacks are weight-sorted, so `active_count` truncates their tails
    // when `kernel_energy_floor < 1.0`.
    let mut fwd_offsets = [0usize; 4];
    for (c, &(corner, _)) in corners.iter().enumerate() {
        fwd_offsets[c + 1] = fwd_offsets[c] + sim.kernel_set(corner).active_count(floor);
    }
    let fwd_total = fwd_offsets[3];

    // Forward: coherent fields for **all corners** in one flat parallel
    // region (kept alive for the adjoint), so workers stay busy across
    // corner boundaries. Each task's IFFT runs serially on its claimed
    // thread in a pooled buffer; kernel spectra are band-limited, so the
    // sparse inverse skips the all-zero rows. Plan errors are unreachable
    // (plan and buffers share one config) but propagate as
    // `LithoError::Fft`; pooled buffers from completed kernels are
    // dropped rather than repooled on that cold path.
    let fields: Vec<Vec<Complex>> = par_map(fwd_total, |t| -> Result<Vec<Complex>, LithoError> {
        let c = fwd_offsets[1..4].iter().position(|&o| t < o).unwrap_or(2);
        let set = sim.kernel_set(corners[c].0);
        let k = t - fwd_offsets[c];
        let mut field = sim.field_pool().take(n2);
        set.apply(k, &spectrum, &mut field);
        sim.plan().inverse_serial_sparse(&mut field)?;
        Ok(field)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    let mut values = LossValues::default();
    // Per-corner resist, loss value, and dL/dI. Every nonzero-weight
    // corner's g_i buffer survives to feed the single batched adjoint
    // region below.
    let mut g_all: [Option<Vec<f64>>; 3] = [None, None, None];
    for (c, &(corner, w_c)) in corners.iter().enumerate() {
        let set = sim.kernel_set(corner);
        let dose = cfg.dose(corner);
        let active = fwd_offsets[c + 1] - fwd_offsets[c];

        let mut intensity = sim.real_pool().take_zeroed(n2);
        for k in 0..active {
            let w = set.kernels()[k].weight * dose;
            accumulate_norm_sqr(&mut intensity, &fields[fwd_offsets[c] + k], w);
        }

        // g_i is fully overwritten, so unspecified pool contents are
        // fine.
        let mut corner_loss = 0.0;
        let mut g_i = sim.real_pool().take(n2);
        for i in 0..n2 {
            let z = sigmoid_sat(theta * (intensity[i] - th));
            let diff = z - target.as_slice()[i];
            corner_loss += diff * diff;
            g_i[i] = w_c * 2.0 * diff * theta * z * (1.0 - z);
        }
        sim.real_pool().put(intensity);
        match corner {
            ProcessCorner::Nominal => values.l2 = corner_loss,
            _ => values.pvb += corner_loss,
        }
        if w_c == 0.0 {
            sim.real_pool().put(g_i);
        } else {
            g_all[c] = Some(g_i);
        }
    }
    values.total = weights.l2 * values.l2 + weights.pvb * values.pvb;

    // Adjoint task index over the corners that carry weight, in the same
    // stack-major order as the forward pass.
    let mut adj_offsets = [0usize; 4];
    let mut adj_corner = [0usize; 3];
    let mut adj_stacks = 0usize;
    for (c, g) in g_all.iter().enumerate() {
        if g.is_some() {
            adj_corner[adj_stacks] = c;
            adj_offsets[adj_stacks + 1] =
                adj_offsets[adj_stacks] + (fwd_offsets[c + 1] - fwd_offsets[c]);
            adj_stacks += 1;
        }
    }
    let adj_total = adj_offsets[adj_stacks];

    // Spectral gradient accumulator (pupil support only is ever nonzero).
    let mut acc = sim.field_pool().take_zeroed(n2);
    if adj_total > 0 {
        // Adjoint: per kernel, B = G ⊙ conj(A); contribute
        // 2·μ·dose·H ⊙ IFFT(B) on the (sparse) pupil support. Again one
        // flat region spanning every weighted corner.
        let contributions: Vec<Vec<(u32, Complex)>> =
            par_map(adj_total, |t| -> Result<Vec<(u32, Complex)>, LithoError> {
                let s = adj_offsets[1..=adj_stacks]
                    .iter()
                    .position(|&o| t < o)
                    .unwrap_or(adj_stacks - 1);
                let c = adj_corner[s];
                let set = sim.kernel_set(corners[c].0);
                let dose = cfg.dose(corners[c].0);
                let k = t - adj_offsets[s];
                let g_i = g_all[c].as_deref().unwrap_or(&[]);
                let mut b = sim.field_pool().take(n2);
                conj_mul_real(&mut b, &fields[fwd_offsets[c] + k], g_i);
                // The transform's output is only sampled on the pupil
                // support below, so the column pass can skip every
                // column outside the kernel set's union support —
                // sampled columns are bit-identical to the dense path.
                sim.plan().inverse_serial_cols(&mut b, set.support_cols())?;
                let scale = 2.0 * set.kernels()[k].weight * dose;
                let contribution = set.kernels()[k]
                    .spectrum
                    .iter()
                    .map(|&(idx, h)| (idx, h * b[idx as usize] * scale))
                    .collect();
                sim.field_pool().put(b);
                Ok(contribution)
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        // Serial, task-ordered accumulation — the same (corner, kernel)
        // order as the old per-corner loop — keeps the gradient
        // bit-identical across thread counts.
        for contribution in contributions {
            for (idx, v) in contribution {
                acc[idx as usize] += v;
            }
        }
    }
    for g_i in g_all.into_iter().flatten() {
        sim.real_pool().put(g_i);
    }
    for field in fields {
        sim.field_pool().put(field);
    }

    // One shared half-spectrum transform turns the spectral accumulator
    // into the pixel-space gradient `Re[FFT(acc)]` directly, without
    // materialising the imaginary half.
    if grad.width() != n || grad.height() != n {
        *grad = Grid2D::new(n, n, 0.0);
    }
    sim.rplan().forward_re_into(&acc, grad.as_mut_slice())?;
    sim.field_pool().put(acc);
    sim.field_pool().put(spectrum);
    Ok(values)
}

/// Evaluates the relaxed loss only (no gradient) — cheaper when a line
/// search or a metric snapshot is all that is needed.
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] on shape mismatch.
pub fn loss_only(
    sim: &LithoSimulator,
    mask: &Grid2D<f64>,
    target: &Grid2D<f64>,
    weights: LossWeights,
) -> Result<LossValues, LithoError> {
    let _span = cfaopc_trace::span("litho.loss_only");
    let n = sim.size();
    if target.width() != n || target.height() != n {
        return Err(LithoError::ShapeMismatch {
            expected: (n, n),
            actual: (target.width(), target.height()),
        });
    }
    let images = sim.aerial_corners(mask)?;
    let theta = sim.config().resist_steepness;
    let th = sim.config().threshold;
    let mut values = LossValues::default();
    for (corner, _) in corner_plan(weights) {
        let img = images.get(corner);
        let mut corner_loss = 0.0;
        for (i, &v) in img.as_slice().iter().enumerate() {
            let z = sigmoid_sat(theta * (v - th));
            let diff = z - target.as_slice()[i];
            corner_loss += diff * diff;
        }
        match corner {
            ProcessCorner::Nominal => values.l2 = corner_loss,
            _ => values.pvb += corner_loss,
        }
    }
    values.total = weights.l2 * values.l2 + weights.pvb * values.pvb;
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LithoConfig;
    use cfaopc_grid::{fill_rect, BitGrid, Rect};

    fn small_sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig {
            size: 32,
            kernel_count: 4,
            ..LithoConfig::default()
        })
        .unwrap()
    }

    fn smooth_mask(n: usize) -> Grid2D<f64> {
        let mut g = Grid2D::new(n, n, 0.0);
        for y in 0..n {
            for x in 0..n {
                let fx = x as f64 / n as f64;
                let fy = y as f64 / n as f64;
                g[(x, y)] = 0.5
                    + 0.35
                        * (2.0 * std::f64::consts::PI * fx).sin()
                        * (2.0 * std::f64::consts::PI * fy).cos();
            }
        }
        g
    }

    fn target_square(n: usize) -> Grid2D<f64> {
        let mut t = BitGrid::new(n, n);
        let c = n as i32 / 2;
        fill_rect(&mut t, Rect::new(c - 6, c - 4, c + 6, c + 4));
        t.to_real()
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let sim = small_sim();
        let n = sim.size();
        let mask = smooth_mask(n);
        let target = target_square(n);
        let weights = LossWeights::default();
        let (_, grad) = loss_and_gradient(&sim, &mask, &target, weights).unwrap();

        let eps = 1e-5;
        for &(x, y) in &[(16usize, 16usize), (10, 20), (3, 3), (25, 12), (16, 10)] {
            let mut plus = mask.clone();
            plus[(x, y)] += eps;
            let mut minus = mask.clone();
            minus[(x, y)] -= eps;
            let lp = loss_only(&sim, &plus, &target, weights).unwrap().total;
            let lm = loss_only(&sim, &minus, &target, weights).unwrap().total;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad[(x, y)];
            let denom = fd.abs().max(an.abs()).max(1e-6);
            assert!(
                (fd - an).abs() / denom < 1e-3,
                "gradient mismatch at ({x},{y}): fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn loss_and_gradient_agree_with_loss_only() {
        let sim = small_sim();
        let n = sim.size();
        let mask = smooth_mask(n);
        let target = target_square(n);
        let weights = LossWeights { l2: 1.0, pvb: 0.5 };
        let (v1, _) = loss_and_gradient(&sim, &mask, &target, weights).unwrap();
        let v2 = loss_only(&sim, &mask, &target, weights).unwrap();
        assert!((v1.l2 - v2.l2).abs() < 1e-9);
        assert!((v1.pvb - v2.pvb).abs() < 1e-9);
        assert!((v1.total - v2.total).abs() < 1e-9);
    }

    #[test]
    fn perfect_target_match_has_small_gradient_at_plateau() {
        // A mask equal to an easily-printable target yields a much smaller
        // loss than an empty mask.
        let sim = small_sim();
        let n = sim.size();
        let target = target_square(n);
        let weights = LossWeights::default();
        let good = loss_only(&sim, &target, &target, weights).unwrap().total;
        let empty = loss_only(&sim, &Grid2D::new(n, n, 0.0), &target, weights)
            .unwrap()
            .total;
        assert!(good < empty, "printing the target beats printing nothing");
    }

    #[test]
    fn descending_the_gradient_reduces_the_loss() {
        let sim = small_sim();
        let n = sim.size();
        let target = target_square(n);
        let mut mask = target.clone();
        let weights = LossWeights::default();
        let (before, grad) = loss_and_gradient(&sim, &mask, &target, weights).unwrap();
        let norm: f64 = grad.as_slice().iter().map(|g| g * g).sum::<f64>().sqrt();
        let step = 0.05 / norm.max(1e-12);
        for (m, g) in mask.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *m = (*m - step * g).clamp(0.0, 1.0);
        }
        let after = loss_only(&sim, &mask, &target, weights).unwrap();
        assert!(
            after.total <= before.total,
            "descent step increased loss: {} -> {}",
            before.total,
            after.total
        );
    }

    #[test]
    fn zero_weights_zero_gradient() {
        let sim = small_sim();
        let n = sim.size();
        let mask = smooth_mask(n);
        let target = target_square(n);
        let (v, grad) =
            loss_and_gradient(&sim, &mask, &target, LossWeights { l2: 0.0, pvb: 0.0 }).unwrap();
        assert_eq!(v.total, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn rejects_mismatched_target() {
        let sim = small_sim();
        let n = sim.size();
        let mask = Grid2D::new(n, n, 0.0);
        let target = Grid2D::new(8, 8, 0.0);
        assert!(loss_and_gradient(&sim, &mask, &target, LossWeights::default()).is_err());
        assert!(loss_only(&sim, &mask, &target, LossWeights::default()).is_err());
    }
}
