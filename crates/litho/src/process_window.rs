//! Focus–exposure (Bossung) analysis and process-window measurement.
//!
//! The circular e-beam writer paper chain (our ref. [7], "Best depth of
//! focus on 22-nm logic wafers with less shot count") motivates
//! curvilinear masks through the *process window*: the region of the
//! focus–exposure plane where a feature's critical dimension (CD) stays
//! within tolerance. This module sweeps defocus and dose, measures CD
//! through a probe, and integrates the window — letting the repository
//! quantify the process-window claims behind PVB.

use crate::config::LithoError;
use crate::kernels::KernelSet;
use crate::simulator::LithoSimulator;
use cfaopc_fft::Complex;
use cfaopc_grid::{BitGrid, Grid2D, Point};

/// Direction along which a CD is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CdAxis {
    /// Width of the printed run crossing the probe horizontally.
    Horizontal,
    /// Height of the printed run crossing the probe vertically.
    Vertical,
}

/// A CD probe: measure the printed run through `at` along `axis`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdProbe {
    /// A point expected to lie inside the printed feature.
    pub at: Point,
    /// Measurement direction.
    pub axis: CdAxis,
}

/// Measures the critical dimension at a probe: the length (in nm) of the
/// contiguous printed run through `probe.at`, or `None` when the probe
/// point itself does not print.
pub fn measure_cd(printed: &BitGrid, probe: &CdProbe, pixel_nm: f64) -> Option<f64> {
    if !printed.at(probe.at) {
        return None;
    }
    let (dx, dy) = match probe.axis {
        CdAxis::Horizontal => (1, 0),
        CdAxis::Vertical => (0, 1),
    };
    let mut len = 1i64;
    let mut p = probe.at;
    loop {
        p = Point::new(p.x + dx, p.y + dy);
        if printed.at(p) {
            len += 1;
        } else {
            break;
        }
    }
    p = probe.at;
    loop {
        p = Point::new(p.x - dx, p.y - dy);
        if printed.at(p) {
            len += 1;
        } else {
            break;
        }
    }
    Some(len as f64 * pixel_nm)
}

/// One focus–exposure condition and its measured CD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BossungPoint {
    /// Focus error in nm.
    pub defocus_nm: f64,
    /// Relative exposure dose.
    pub dose: f64,
    /// Measured CD in nm (`None` = feature failed to print at the probe).
    pub cd_nm: Option<f64>,
}

/// The focus–exposure CD matrix for one mask and probe.
#[derive(Debug, Clone, PartialEq)]
pub struct BossungSurface {
    /// Row-major `(defocus, dose)` grid of measurements; dose varies
    /// fastest.
    pub points: Vec<BossungPoint>,
    /// The defocus values swept.
    pub defocus_nm: Vec<f64>,
    /// The dose values swept.
    pub doses: Vec<f64>,
}

impl BossungSurface {
    /// The measured CD at sweep indices `(focus_idx, dose_idx)`.
    pub fn cd(&self, focus_idx: usize, dose_idx: usize) -> Option<f64> {
        self.points[focus_idx * self.doses.len() + dose_idx].cd_nm
    }

    /// Fraction of swept focus–exposure conditions whose CD stays within
    /// `±tolerance` (relative) of `cd_target_nm` — the discrete
    /// process-window area, normalized to the sweep rectangle.
    pub fn window_fraction(&self, cd_target_nm: f64, tolerance: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let lo = cd_target_nm * (1.0 - tolerance);
        let hi = cd_target_nm * (1.0 + tolerance);
        let hits = self
            .points
            .iter()
            .filter(|p| p.cd_nm.is_some_and(|cd| cd >= lo && cd <= hi))
            .count();
        hits as f64 / self.points.len() as f64
    }
}

/// Sweeps focus and exposure for a fixed mask, measuring CD at a probe.
///
/// Uses the simulator's optics but regenerates the kernel stack per
/// defocus value; one mask FFT is shared across the whole sweep.
///
/// # Errors
///
/// Returns [`LithoError`] on shape mismatches or invalid derived
/// configurations.
pub fn bossung_surface(
    sim: &LithoSimulator,
    mask: &BitGrid,
    probe: &CdProbe,
    defocus_values_nm: &[f64],
    doses: &[f64],
) -> Result<BossungSurface, LithoError> {
    let cfg = sim.config();
    let spectrum = sim.mask_spectrum(&mask.to_real())?;
    let n = cfg.size;
    let mut points = Vec::with_capacity(defocus_values_nm.len() * doses.len());
    for &defocus in defocus_values_nm {
        let set = KernelSet::generate_with_defocus(cfg, defocus)?;
        // Unit-dose intensity for this focus; doses scale it linearly.
        let base = intensity_from(&set, &spectrum, n, sim)?;
        for &dose in doses {
            let printed = BitGrid::from_threshold(
                &Grid2D::from_vec(n, n, base.as_slice().iter().map(|&v| v * dose).collect()),
                cfg.threshold,
            );
            points.push(BossungPoint {
                defocus_nm: defocus,
                dose,
                cd_nm: measure_cd(&printed, probe, cfg.pixel_nm()),
            });
        }
    }
    Ok(BossungSurface {
        points,
        defocus_nm: defocus_values_nm.to_vec(),
        doses: doses.to_vec(),
    })
}

fn intensity_from(
    set: &KernelSet,
    spectrum: &[Complex],
    n: usize,
    sim: &LithoSimulator,
) -> Result<Grid2D<f64>, LithoError> {
    Ok(Grid2D::from_vec(
        n,
        n,
        sim.accumulate_intensity(set, spectrum, 1.0)?,
    ))
}

/// Convenience: the symmetric sweep the examples use
/// (`defocus ∈ {0, ±step, …}`, `dose ∈ 1 ± k·2 %`).
pub fn standard_sweep(
    max_defocus_nm: f64,
    focus_steps: usize,
    dose_span: f64,
    dose_steps: usize,
) -> (Vec<f64>, Vec<f64>) {
    let focus: Vec<f64> = (0..=focus_steps)
        .map(|i| max_defocus_nm * i as f64 / focus_steps.max(1) as f64)
        .collect();
    let doses: Vec<f64> = (0..=dose_steps)
        .map(|i| 1.0 - dose_span + 2.0 * dose_span * i as f64 / dose_steps.max(1) as f64)
        .collect();
    (focus, doses)
}

/// A compact focus sweep for one mask: CD through focus at nominal
/// dose (a Bossung slice).
///
/// # Errors
///
/// Returns [`LithoError`] as in [`bossung_surface`].
pub fn cd_through_focus(
    sim: &LithoSimulator,
    mask: &BitGrid,
    probe: &CdProbe,
    defocus_values_nm: &[f64],
) -> Result<Vec<Option<f64>>, LithoError> {
    let surface = bossung_surface(sim, mask, probe, defocus_values_nm, &[1.0])?;
    Ok(surface.points.iter().map(|p| p.cd_nm).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LithoConfig;
    use cfaopc_grid::{fill_rect, Rect};

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::fast_test()).unwrap()
    }

    fn bar_mask(n: usize) -> (BitGrid, CdProbe) {
        let mut m = BitGrid::new(n, n);
        // 64px @ 32nm/px: a 160nm-wide, 768nm-tall bar.
        fill_rect(&mut m, Rect::new(30, 20, 35, 44));
        (
            m,
            CdProbe {
                at: Point::new(32, 32),
                axis: CdAxis::Horizontal,
            },
        )
    }

    #[test]
    fn measure_cd_counts_the_run() {
        let (m, probe) = bar_mask(64);
        assert_eq!(measure_cd(&m, &probe, 32.0), Some(160.0));
        let miss = CdProbe {
            at: Point::new(2, 2),
            axis: CdAxis::Horizontal,
        };
        assert_eq!(measure_cd(&m, &miss, 32.0), None);
    }

    #[test]
    fn measure_cd_vertical() {
        let (m, _) = bar_mask(64);
        let probe = CdProbe {
            at: Point::new(32, 32),
            axis: CdAxis::Vertical,
        };
        assert_eq!(measure_cd(&m, &probe, 32.0), Some(768.0));
    }

    #[test]
    fn dose_increases_cd() {
        let s = sim();
        let (m, probe) = bar_mask(s.size());
        let surface = bossung_surface(&s, &m, &probe, &[0.0], &[0.9, 1.0, 1.1]).unwrap();
        let cds: Vec<f64> = surface
            .points
            .iter()
            .map(|p| p.cd_nm.unwrap_or(0.0))
            .collect();
        assert!(
            cds[0] <= cds[1] && cds[1] <= cds[2],
            "CD must grow with dose: {cds:?}"
        );
        assert!(cds[2] > 0.0);
    }

    #[test]
    fn heavy_defocus_degrades_cd() {
        let s = sim();
        let (m, probe) = bar_mask(s.size());
        let cds = cd_through_focus(&s, &m, &probe, &[0.0, 300.0]).unwrap();
        let nominal = cds[0].unwrap_or(0.0);
        let blurred = cds[1].unwrap_or(0.0);
        assert!(
            blurred < nominal,
            "300nm defocus should thin the print: {nominal} -> {blurred}"
        );
    }

    #[test]
    fn window_fraction_counts_in_tolerance_points() {
        let surface = BossungSurface {
            points: vec![
                BossungPoint {
                    defocus_nm: 0.0,
                    dose: 1.0,
                    cd_nm: Some(100.0),
                },
                BossungPoint {
                    defocus_nm: 0.0,
                    dose: 1.1,
                    cd_nm: Some(125.0),
                },
                BossungPoint {
                    defocus_nm: 50.0,
                    dose: 1.0,
                    cd_nm: None,
                },
                BossungPoint {
                    defocus_nm: 50.0,
                    dose: 1.1,
                    cd_nm: Some(95.0),
                },
            ],
            defocus_nm: vec![0.0, 50.0],
            doses: vec![1.0, 1.1],
        };
        // Target 100 ±10%: hits are 100 and 95 → 2/4.
        assert_eq!(surface.window_fraction(100.0, 0.10), 0.5);
        assert_eq!(surface.cd(0, 0), Some(100.0));
        assert_eq!(surface.cd(1, 0), None);
    }

    #[test]
    fn standard_sweep_shapes() {
        let (focus, doses) = standard_sweep(80.0, 4, 0.04, 4);
        assert_eq!(focus, vec![0.0, 20.0, 40.0, 60.0, 80.0]);
        assert_eq!(doses.len(), 5);
        assert!((doses[0] - 0.96).abs() < 1e-12);
        assert!((doses[4] - 1.04).abs() < 1e-12);
        assert!((doses[2] - 1.0).abs() < 1e-12);
    }
}
