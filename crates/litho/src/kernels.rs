//! Sum-of-coherent-systems (SOCS) optical kernels.
//!
//! The paper's forward model (Eq. 1) is `I = Σ_k μ_k |h_k ⊗ M|²`. We
//! generate the kernels from first principles with the **Abbe source-point
//! decomposition**: the annular partially-coherent source is sampled at
//! `K` points; each point `s` illuminates the mask as a coherent system
//! whose transfer function is the projection pupil shifted by the source
//! frequency, `H_s(ν) = P(ν + ν_s)`, optionally carrying a paraxial
//! defocus phase. This has exactly the SOCS form of Eq. 1 with
//! `μ_s = 1/K`.
//!
//! Kernels are band-limited to the pupil (radius `NA/λ` in frequency
//! space, ≈14 bins on the default grid) so each spectrum is stored
//! **sparsely** as `(flat index, value)` pairs; applying a kernel to a
//! mask spectrum touches only those entries.

use crate::config::{LithoConfig, LithoError, ProcessCorner};
use cfaopc_fft::{signed_freq, Complex};

/// One coherent kernel: a weight and a sparse frequency-domain transfer
/// function over an `n × n` grid.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// SOCS weight `μ_k`.
    pub weight: f64,
    /// Sparse spectrum: `(row-major frequency index, H(ν))`.
    pub spectrum: Vec<(u32, Complex)>,
}

/// The kernel stack for one process corner.
#[derive(Debug, Clone)]
pub struct KernelSet {
    size: usize,
    corner: ProcessCorner,
    kernels: Vec<Kernel>,
    /// `support_cols[kx]` is true when any kernel's spectrum touches a
    /// frequency bin in column `kx`. The adjoint pass samples its
    /// inverse-FFT outputs only on the pupil support, so the column
    /// transform can skip every column outside this mask.
    support_cols: Vec<bool>,
}

impl KernelSet {
    /// Generates the Abbe/SOCS kernel stack for `corner`.
    ///
    /// Source points are laid out on an area-uniform golden-angle spiral
    /// across the annulus `[sigma_inner, sigma_outer]·NA/λ`, giving an
    /// even, unclustered sampling for any `kernel_count`. Weights are
    /// uniform and normalized so an open-frame mask images at intensity
    /// `dose(corner)`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError`] when `config` fails validation.
    pub fn generate(config: &LithoConfig, corner: ProcessCorner) -> Result<Self, LithoError> {
        Self::generate_inner(config, corner, config.defocus(corner))
    }

    /// Generates a kernel stack at an arbitrary focus error (used by the
    /// process-window sweeps); the result is tagged with the corner whose
    /// geometry it matches least ambiguously (`Nominal`).
    ///
    /// # Errors
    ///
    /// Returns [`LithoError`] when `config` fails validation.
    pub fn generate_with_defocus(
        config: &LithoConfig,
        defocus_nm: f64,
    ) -> Result<Self, LithoError> {
        Self::generate_inner(config, ProcessCorner::Nominal, defocus_nm)
    }

    fn generate_inner(
        config: &LithoConfig,
        corner: ProcessCorner,
        defocus: f64,
    ) -> Result<Self, LithoError> {
        config.validate()?;
        let n = config.size;
        let cutoff = config.na / config.wavelength_nm; // cycles per nm
        let freq_step = 1.0 / config.tile_nm; // frequency-bin pitch
        let k_count = config.kernel_count;
        let golden = std::f64::consts::PI * (3.0 - 5f64.sqrt());

        let mut kernels = Vec::with_capacity(k_count);
        for k in 0..k_count {
            // Area-uniform radial position inside the annulus.
            let t = (k as f64 + 0.5) / k_count as f64;
            let s2 = config.sigma_inner * config.sigma_inner;
            let o2 = config.sigma_outer * config.sigma_outer;
            let sigma = (s2 + t * (o2 - s2)).sqrt();
            let theta = k as f64 * golden;
            let src = (sigma * cutoff * theta.cos(), sigma * cutoff * theta.sin());

            // Enumerate frequency bins inside the shifted pupil. The pupil
            // spans at most (1+sigma_outer)*cutoff from DC.
            let max_bin = (((1.0 + config.sigma_outer) * cutoff / freq_step).ceil() as i64) + 1;
            let mut spectrum = Vec::new();
            for ky in 0..n {
                let fy = signed_freq(ky, n);
                if fy.abs() > max_bin {
                    continue;
                }
                for kx in 0..n {
                    let fx = signed_freq(kx, n);
                    if fx.abs() > max_bin {
                        continue;
                    }
                    let nu_x = fx as f64 * freq_step + src.0;
                    let nu_y = fy as f64 * freq_step + src.1;
                    let nu2 = nu_x * nu_x + nu_y * nu_y;
                    if nu2.sqrt() <= cutoff {
                        // Paraxial defocus phase: exp(-iπλδ|ν|²).
                        let phase = -std::f64::consts::PI * config.wavelength_nm * defocus * nu2;
                        spectrum.push(((ky * n + kx) as u32, Complex::cis(phase)));
                    }
                }
            }
            kernels.push(Kernel {
                weight: 1.0 / k_count as f64,
                spectrum,
            });
        }
        // Descending singular-value weight, so energy truncation (the
        // `kernel_energy_floor` knob) can drop a suffix. The sort is
        // stable and the Abbe weights are uniform, so today's generation
        // order — and therefore every accumulation order downstream — is
        // unchanged bit for bit; the sort only matters for kernel sets
        // with genuinely decaying spectra.
        kernels.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        let mut support_cols = vec![false; n];
        for kernel in &kernels {
            for &(idx, _) in &kernel.spectrum {
                support_cols[idx as usize % n] = true;
            }
        }
        Ok(KernelSet {
            size: n,
            corner,
            kernels,
            support_cols,
        })
    }

    /// Grid edge the kernels are defined on.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The corner these kernels model.
    #[inline]
    pub fn corner(&self) -> ProcessCorner {
        self.corner
    }

    /// The kernels, sorted by descending SOCS weight.
    #[inline]
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Column mask of the union pupil support: `support_cols()[kx]` is
    /// true iff some kernel has a spectrum entry in frequency column
    /// `kx`. Length is [`Self::size`]. Feed this to
    /// [`cfaopc_fft::Fft2d::inverse_serial_cols`] when the transform's
    /// output is only read back at pupil bins.
    #[inline]
    pub fn support_cols(&self) -> &[bool] {
        &self.support_cols
    }

    /// Number of leading kernels needed to capture `energy_floor` of the
    /// total SOCS weight (kernels are stored in descending weight order).
    ///
    /// `energy_floor >= 1.0` keeps every kernel — the exact model. The
    /// result is never zero: at least the heaviest kernel always stays.
    pub fn active_count(&self, energy_floor: f64) -> usize {
        if energy_floor >= 1.0 || self.kernels.is_empty() {
            return self.kernels.len();
        }
        let total: f64 = self.kernels.iter().map(|k| k.weight).sum();
        let target = energy_floor * total;
        let mut captured = 0.0;
        for (i, kernel) in self.kernels.iter().enumerate() {
            captured += kernel.weight;
            if captured >= target {
                return i + 1;
            }
        }
        self.kernels.len()
    }

    /// Applies kernel `k` to a full mask spectrum: writes
    /// `H_k ⊙ spectrum` into `out` (zeroing everything else).
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths differ from `size²` or `k` is out of range.
    pub fn apply(&self, k: usize, spectrum: &[Complex], out: &mut [Complex]) {
        let n2 = self.size * self.size;
        assert_eq!(spectrum.len(), n2, "spectrum length");
        assert_eq!(out.len(), n2, "output length");
        out.fill(Complex::ZERO);
        for &(idx, h) in &self.kernels[k].spectrum {
            out[idx as usize] = h * spectrum[idx as usize];
        }
    }

    /// Accumulates `scale · H_k ⊙ field_spectrum` into `acc` (sparse —
    /// only pupil bins are touched). Used by the adjoint pass.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths differ from `size²` or `k` is out of range.
    pub fn accumulate(
        &self,
        k: usize,
        field_spectrum: &[Complex],
        scale: f64,
        acc: &mut [Complex],
    ) {
        let n2 = self.size * self.size;
        assert_eq!(field_spectrum.len(), n2, "spectrum length");
        assert_eq!(acc.len(), n2, "accumulator length");
        for &(idx, h) in &self.kernels[k].spectrum {
            acc[idx as usize] += h * field_spectrum[idx as usize] * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_count_and_weights() {
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Nominal).unwrap();
        assert_eq!(set.kernels().len(), cfg.kernel_count);
        let total: f64 = set.kernels().iter().map(|k| k.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernels_sorted_by_descending_weight() {
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Min).unwrap();
        for pair in set.kernels().windows(2) {
            assert!(pair[0].weight >= pair[1].weight);
        }
    }

    #[test]
    fn active_count_respects_energy_floor() {
        let cfg = LithoConfig::fast_test(); // 6 uniform-weight kernels
        let set = KernelSet::generate(&cfg, ProcessCorner::Nominal).unwrap();
        let k = set.kernels().len();
        assert_eq!(set.active_count(1.0), k, "floor 1.0 keeps everything");
        assert_eq!(set.active_count(1.5), k);
        // Uniform weights: capturing a fraction f needs ~ceil(f·k)
        // kernels (floors chosen off the rounding boundaries).
        assert_eq!(set.active_count(0.49), k / 2);
        assert_eq!(set.active_count(0.51), k / 2 + 1);
        assert!(set.active_count(1e-9) >= 1, "never drops every kernel");
    }

    #[test]
    fn spectra_are_nonempty_and_band_limited() {
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Nominal).unwrap();
        let n = cfg.size;
        let cutoff = cfg.na / cfg.wavelength_nm;
        let freq_step = 1.0 / cfg.tile_nm;
        let max_norm = (1.0 + cfg.sigma_outer) * cutoff;
        for kernel in set.kernels() {
            assert!(!kernel.spectrum.is_empty());
            for &(idx, h) in &kernel.spectrum {
                // Unit-modulus transfer inside the pupil.
                assert!((h.abs() - 1.0).abs() < 1e-12);
                let ky = idx as usize / n;
                let kx = idx as usize % n;
                let fy = signed_freq(ky, n) as f64 * freq_step;
                let fx = signed_freq(kx, n) as f64 * freq_step;
                assert!((fx * fx + fy * fy).sqrt() <= max_norm + freq_step);
            }
        }
    }

    #[test]
    fn dc_bin_is_inside_every_kernel() {
        // Every source point lies inside the pupil (σ ≤ 1), so DC passes;
        // this is what normalizes the open-frame intensity to 1.
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Nominal).unwrap();
        for kernel in set.kernels() {
            assert!(kernel.spectrum.iter().any(|&(idx, _)| idx == 0));
        }
    }

    #[test]
    fn nominal_kernels_are_real() {
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Nominal).unwrap();
        for kernel in set.kernels() {
            for &(_, h) in &kernel.spectrum {
                assert!(h.im.abs() < 1e-12, "no defocus phase at nominal");
            }
        }
    }

    #[test]
    fn defocused_kernels_carry_phase() {
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Min).unwrap();
        let has_phase = set
            .kernels()
            .iter()
            .flat_map(|k| k.spectrum.iter())
            .any(|&(_, h)| h.im.abs() > 1e-6);
        assert!(has_phase);
    }

    #[test]
    fn apply_zeroes_outside_pupil() {
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Nominal).unwrap();
        let n2 = cfg.size * cfg.size;
        let spectrum = vec![Complex::ONE; n2];
        let mut out = vec![Complex::new(9.0, 9.0); n2];
        set.apply(0, &spectrum, &mut out);
        let nonzero = out.iter().filter(|z| z.abs() > 0.0).count();
        assert_eq!(nonzero, set.kernels()[0].spectrum.len());
    }

    #[test]
    fn support_cols_cover_every_spectrum_entry() {
        let cfg = LithoConfig::fast_test();
        for corner in [
            ProcessCorner::Nominal,
            ProcessCorner::Max,
            ProcessCorner::Min,
        ] {
            let set = KernelSet::generate(&cfg, corner).unwrap();
            let cols = set.support_cols();
            assert_eq!(cols.len(), cfg.size);
            for kernel in set.kernels() {
                for &(idx, _) in &kernel.spectrum {
                    assert!(cols[idx as usize % cfg.size], "column {idx} unflagged");
                }
            }
            // The pupil is band-limited: the mask must also exclude
            // mid-band columns, otherwise sampling buys nothing.
            assert!(cols.iter().any(|&c| !c), "mask is trivially all-true");
        }
    }

    #[test]
    fn source_points_spread_across_annulus() {
        // Kernel supports must not all coincide: distinct source points
        // shift the pupil to distinct positions.
        let cfg = LithoConfig::fast_test();
        let set = KernelSet::generate(&cfg, ProcessCorner::Nominal).unwrap();
        let supports: std::collections::HashSet<Vec<u32>> = set
            .kernels()
            .iter()
            .map(|k| k.spectrum.iter().map(|&(idx, _)| idx).collect())
            .collect();
        assert!(supports.len() > 1, "kernels degenerate to one source point");
    }
}
