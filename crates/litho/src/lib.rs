//! Partially coherent lithography simulation for CFAOPC.
//!
//! Implements the paper's preliminaries (§2.1–§2.2) from first principles:
//!
//! * [`LithoConfig`] — optics (193 nm / NA 1.35 / annular source), resist
//!   threshold, process corners, grid geometry;
//! * [`KernelSet`] — Abbe/SOCS kernel generation (the `h_k`, `μ_k` of
//!   Eq. 1), stored sparsely on the pupil support;
//! * [`LithoSimulator`] — the Hopkins forward model
//!   `I = Σ_k μ_k |h_k ⊗ M|²` via FFT, plus the threshold resist (Eq. 2)
//!   and its sigmoid relaxation;
//! * [`loss_and_gradient`] — the hand-derived adjoint of the ILT loss
//!   `L = L2 + L_pvb` (Eq. 6) with respect to every mask pixel.
//!
//! # Examples
//!
//! ```
//! use cfaopc_litho::{LithoConfig, LithoSimulator, ProcessCorner};
//! use cfaopc_grid::{fill_rect, BitGrid, Rect};
//!
//! # fn main() -> Result<(), cfaopc_litho::LithoError> {
//! let cfg = LithoConfig::fast_test();
//! let sim = LithoSimulator::new(cfg.clone())?;
//! let mut mask = BitGrid::new(cfg.size, cfg.size);
//! fill_rect(&mut mask, Rect::new(20, 20, 44, 44));
//! let printed = sim.print(&mask, cfaopc_litho::ProcessCorner::Nominal)?;
//! assert!(printed.count_ones() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod gradient;
mod kernels;
mod process_window;
mod simulator;

pub use config::{CancelToken, LithoConfig, LithoError, NonFiniteTerm, ProcessCorner};
pub use gradient::{loss_and_gradient, loss_and_gradient_into, loss_only, LossValues, LossWeights};
pub use kernels::{Kernel, KernelSet};
pub use process_window::{
    bossung_surface, cd_through_focus, measure_cd, standard_sweep, BossungPoint, BossungSurface,
    CdAxis, CdProbe,
};
pub use simulator::{sigmoid, sigmoid_sat, CornerImages, LithoSimulator, SIGMOID_SAT};
