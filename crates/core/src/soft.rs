//! Softmax (log-sum-exp–weighted) circle composition — the smooth
//! alternative to the paper's hard max (Eq. 11), used by the
//! `ablation_compose` study.
//!
//! The paper routes gradients through the argmax circle only; a softmax
//! composition spreads them across every circle covering a pixel:
//!
//! ```text
//! M̄(p) = Σᵢ wᵢ vᵢ,   vᵢ = qᵢ fᵢ(p),   wᵢ = e^{βvᵢ} / (1 + Σⱼ e^{βvⱼ})
//! ```
//!
//! with an implicit background term `v₀ = 0` so empty pixels stay 0 and
//! the weights are well normalized. As `β → ∞` this approaches the hard
//! max. The backward pass is exact:
//! `∂M̄/∂vₖ = wₖ (1 + β vₖ − β M̄)`.
//!
//! The forward pass shares the tile-bucketed engine of
//! [`crate::compose`]: circles are binned by window into [`TILE`]-sized
//! tiles, workers claim active tiles dynamically, and the per-pixel
//! distance rows come from the bit-exact SIMD kernel in [`crate::simd`].
//! Deep-interior pixels (sigmoid provably saturated at `f = 1`) reuse a
//! per-circle cached `e^{βq}` instead of calling `exp` twice per pixel.
//! Unlike the hard max, the softmax **ignores `q_floor`** — a circle
//! with `q = 0` still contributes `e^{β·0} = 1` to every covered pixel's
//! normalizer, so dropping it would change the output. Accumulation
//! order within a pixel follows circle index order in every bucket, so
//! the result stays bit-identical to [`compose_soft_serial`].
//!
//! The backward pass accumulates per-band partial gradients (tile rows
//! claimed dynamically, each band scanning its slice of every circle's
//! window in row-major order) and merges them with a deterministic
//! ascending-band reduction — bit-identical to the band-blocked
//! [`SoftComposite::backward_serial`] at any worker count.
//!
//! [`TILE`]: crate::compose::TILE

use crate::compose::{place_circles, ComposeConfig, PlacedCircle, TileGrid, RENDER_GRAIN, TILE};
use crate::repr::SparseCircles;
use crate::simd::{fill_dist_row, SIGMOID_SAT};
use cfaopc_fft::parallel::{par_index_claim, DisjointSliceMut};
use cfaopc_grid::Grid2D;
use cfaopc_litho::sigmoid;

/// Dense mask produced by the softmax composition, with the state needed
/// for its backward pass.
#[derive(Debug, Clone)]
pub struct SoftComposite {
    /// The dense mask `M̄`.
    pub mask: Grid2D<f64>,
    /// Normalizer `1 + Σ e^{βv}` per pixel.
    norm: Grid2D<f64>,
    placed: Vec<PlacedCircle>,
    config: ComposeConfig,
    beta: f64,
}

/// Builds the softmax-composed dense mask on the tiled parallel engine
/// (bit-identical to [`compose_soft_serial`]).
///
/// `beta` controls the sharpness (`beta → ∞` recovers the max
/// composition of [`crate::compose`]).
///
/// Callers composing every iteration should prefer a reused
/// [`SoftWorkspace`], which skips this function's per-call buffer
/// allocations.
pub fn compose_soft(circles: &SparseCircles, config: &ComposeConfig, beta: f64) -> SoftComposite {
    let mut ws = SoftWorkspace::new();
    ws.compose(circles, config, beta);
    ws.into_composite()
}

/// Reusable state for the softmax composition: numerator/normalizer
/// grids, placed circles, tile buckets. Mirrors
/// [`crate::compose::ComposeWorkspace`] so the CircleOpt softmax branch
/// performs **zero steady-state heap allocations** — asserted by
/// `tests/alloc.rs`.
///
/// Reuse is handled with the tile dirty flags: a tile rendered on the
/// previous compose is reset to its background state (numerator 0,
/// normalizer `e^{β·0} = 1`) before accumulation, and a tile untouched
/// both then and now is skipped outright (the in-place `0 / 1` divide is
/// idempotent there), keeping reused results bit-identical to a fresh
/// [`compose_soft`].
#[derive(Debug)]
pub struct SoftWorkspace {
    /// Numerator during render; becomes the mask after the divide.
    mask: Grid2D<f64>,
    norm: Grid2D<f64>,
    placed: Vec<PlacedCircle>,
    tiles: TileGrid,
    partials: Vec<f64>,
    config: Option<ComposeConfig>,
    beta: f64,
}

impl Default for SoftWorkspace {
    fn default() -> Self {
        SoftWorkspace::new()
    }
}

impl SoftWorkspace {
    /// Creates an empty workspace; buffers are sized by the first
    /// [`SoftWorkspace::compose`] call and reused afterwards.
    pub fn new() -> Self {
        SoftWorkspace {
            mask: Grid2D::new(0, 0, 0.0),
            norm: Grid2D::new(0, 0, 1.0),
            placed: Vec::new(),
            tiles: TileGrid::new(),
            partials: Vec::new(),
            config: None,
            beta: 0.0,
        }
    }

    /// Renders the softmax-composed dense mask into the workspace
    /// buffers. Bit-identical to [`compose_soft`] /
    /// [`compose_soft_serial`] whether the workspace is fresh or reused.
    pub fn compose(&mut self, circles: &SparseCircles, config: &ComposeConfig, beta: f64) {
        let n = config.size;
        if self.mask.width() != n || self.mask.height() != n {
            self.mask = Grid2D::new(n, n, 0.0);
            self.norm = Grid2D::new(n, n, 1.0);
        }
        self.config = Some(*config);
        self.beta = beta;
        place_circles(circles, config, &mut self.placed);
        // No q-floor here: every circle, even at q ≤ 0, feeds the softmax
        // normalizer, so pruning would change the output.
        self.tiles.bin(&self.placed, n, config.window_margin, None);

        let placed = &self.placed;
        let tiles = &self.tiles;
        let tiles_x = tiles.tiles_x();
        let active = tiles.active();
        let total_tiles = tiles_x * n.div_ceil(TILE);
        cfaopc_trace::counters::TILES_RENDERED.add(active.len() as u64);
        cfaopc_trace::counters::TILES_SKIPPED.add((total_tiles - active.len()) as u64);
        let alpha = config.alpha;
        let margin = config.window_margin;
        let started = std::time::Instant::now();
        let num_sh = DisjointSliceMut::new(self.mask.as_mut_slice());
        let norm_sh = DisjointSliceMut::new(self.norm.as_mut_slice());
        par_index_claim(active.len(), RENDER_GRAIN, |k| {
            let t = active[k] as usize;
            let (ty, tx) = (t / tiles_x, t % tiles_x);
            let c0 = tx * TILE;
            let c1 = (c0 + TILE).min(n);
            let t_y0 = ty * TILE;
            let t_y1 = (t_y0 + TILE).min(n);
            for y in t_y0..t_y1 {
                // SAFETY: tile `t` is claimed by exactly one worker per
                // region and tiles are disjoint pixel sets, so no other
                // live sub-slice overlaps this row segment.
                #[allow(unsafe_code)]
                let nrow = unsafe { num_sh.slice_mut(y * n + c0, c1 - c0) };
                // SAFETY: as above — same tile, same disjoint segment.
                #[allow(unsafe_code)]
                let zrow = unsafe { norm_sh.slice_mut(y * n + c0, c1 - c0) };
                nrow.fill(0.0);
                zrow.fill(1.0);
            }
            let mut dist = [0.0f64; TILE];
            for &ci in tiles.bucket(t) {
                let pc = &placed[ci as usize];
                let (wx0, wx1, wy0, wy1) = pc
                    .window(n, margin)
                    .expect("binned circles have on-grid windows");
                let x0 = (wx0 as usize).max(c0);
                let x1 = (wx1 as usize + 1).min(c1);
                let y0 = (wy0 as usize).max(t_y0);
                let y1 = (wy1 as usize + 1).min(t_y1);
                if x0 >= x1 {
                    continue;
                }
                let seg_len = x1 - x0;
                // Saturated interior pixels have v = q·1 = q exactly, so
                // their weight e^{βv} is this one per-circle constant.
                let e_sat = (beta * pc.q).exp();
                for y in y0..y1 {
                    let dyv = y as f64 - pc.cy;
                    let seg = &mut dist[..seg_len];
                    fill_dist_row(seg, x0, pc.cx, dyv * dyv);
                    // SAFETY: the segment lies inside tile `t`'s rows,
                    // claimed by this worker alone.
                    #[allow(unsafe_code)]
                    let nrow = unsafe { num_sh.slice_mut(y * n + x0, seg_len) };
                    // SAFETY: as above — same in-tile row segment.
                    #[allow(unsafe_code)]
                    let zrow = unsafe { norm_sh.slice_mut(y * n + x0, seg_len) };
                    for (j, &d) in seg.iter().enumerate() {
                        let t_arg = alpha * (pc.r - d);
                        let (v, e) = if t_arg >= SIGMOID_SAT {
                            (pc.q, e_sat) // f = 1.0 exactly
                        } else {
                            let v = pc.q * sigmoid(t_arg);
                            (v, (beta * v).exp())
                        };
                        nrow[j] += v * e;
                        zrow[j] += e;
                    }
                }
            }
        });
        cfaopc_trace::counters::COMPOSE_RENDER_NS.add(started.elapsed().as_nanos() as u64);
        self.tiles.commit_dirty();

        // In-place divide: the numerator grid becomes the mask. Clean
        // skipped tiles hold (0, 1), so re-dividing them is idempotent.
        for (m, &z) in self
            .mask
            .as_mut_slice()
            .iter_mut()
            .zip(self.norm.as_slice())
        {
            *m /= z;
        }
    }

    /// The dense mask `M̄` from the last [`SoftWorkspace::compose`].
    pub fn mask(&self) -> &Grid2D<f64> {
        &self.mask
    }

    /// Backward pass into a caller-owned buffer, resized to `4n` and
    /// fully overwritten — the allocation-free counterpart of
    /// [`SoftComposite::backward`]. The band-partial scratch buffer
    /// lives in the workspace (hence `&mut self`), so steady-state
    /// iterations stay allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if [`SoftWorkspace::compose`] has not been called, or on a
    /// gradient shape mismatch.
    pub fn backward_into(&mut self, grad_mask: &Grid2D<f64>, grads: &mut Vec<f64>) {
        let config = self
            .config
            .as_ref()
            .expect("backward_into requires a prior compose");
        grads.clear();
        grads.resize(self.placed.len() * 4, 0.0);
        backward_soft_into(
            &self.placed,
            config,
            self.beta,
            &self.mask,
            &self.norm,
            grad_mask,
            &mut self.partials,
            grads,
        );
    }

    /// Consumes the workspace into an owned [`SoftComposite`].
    ///
    /// # Panics
    ///
    /// Panics if [`SoftWorkspace::compose`] has not been called.
    pub fn into_composite(self) -> SoftComposite {
        SoftComposite {
            config: self
                .config
                .expect("into_composite requires a prior compose"),
            mask: self.mask,
            norm: self.norm,
            placed: self.placed,
            beta: self.beta,
        }
    }
}

/// Distance-row scratch length for the backward band scans: windows can
/// be wider than a tile, so rows are processed in chunks of this many
/// pixels (chunking is invisible to the math — every chunk runs the
/// same bit-exact kernel).
const DIST_SEG: usize = 2 * TILE;

/// Fused backward pass shared by [`SoftComposite::backward`] and
/// [`SoftWorkspace::backward_into`].
///
/// Bands (tile rows) are claimed dynamically; each band task scans its
/// slice of every circle's window row-major, accumulating into that
/// band's private partial-gradient block, and a deterministic
/// ascending-band reduction merges the partials and applies the STE
/// gates — the same summation tree as the band-blocked
/// [`SoftComposite::backward_serial`], so the result is bit-identical
/// to it at any worker count. Saturated interior pixels (`f = 1`
/// exactly, `h = 0`) reuse the per-circle `e^{βq}` weight and
/// contribute only to `∂q`; the zero x/y/r terms the serial reference
/// adds explicitly can at most flip a zero's sign, which compares
/// equal.
#[allow(clippy::too_many_arguments)] // internal: mask/norm/grad_mask are one fixed forward-state set
fn backward_soft_into(
    placed: &[PlacedCircle],
    config: &ComposeConfig,
    beta: f64,
    mask: &Grid2D<f64>,
    norm: &Grid2D<f64>,
    grad_mask: &Grid2D<f64>,
    partials: &mut Vec<f64>,
    grads: &mut [f64],
) {
    let n = config.size;
    assert!(
        grad_mask.width() == n && grad_mask.height() == n,
        "gradient shape mismatch"
    );
    debug_assert_eq!(grads.len(), placed.len() * 4);
    if placed.is_empty() {
        return;
    }
    let bands = n.div_ceil(TILE);
    let stride = placed.len() * 4;
    partials.clear();
    partials.resize(bands * stride, 0.0);
    let alpha = config.alpha;
    let margin = config.window_margin;
    let m = mask.as_slice();
    let z = norm.as_slice();
    let gm = grad_mask.as_slice();
    let started = std::time::Instant::now();
    let part_sh = DisjointSliceMut::new(partials.as_mut_slice());
    par_index_claim(bands, 1, |b| {
        // SAFETY: band `b` is claimed by exactly one worker per region
        // and bands own disjoint `stride`-sized partial blocks.
        #[allow(unsafe_code)]
        let part = unsafe { part_sh.slice_mut(b * stride, stride) };
        let band_y0 = b * TILE;
        let band_y1 = (band_y0 + TILE).min(n);
        let mut dist = [0.0f64; DIST_SEG];
        for (i, pc) in placed.iter().enumerate() {
            let Some((x0, x1, y0, y1)) = pc.window(n, margin) else {
                continue;
            };
            let row0 = (y0 as usize).max(band_y0);
            let row1 = (y1 as usize + 1).min(band_y1);
            if row0 >= row1 {
                continue;
            }
            let e_sat = (beta * pc.q).exp();
            let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
            for y in row0..row1 {
                let dyv = y as f64 - pc.cy;
                let dy2 = dyv * dyv;
                let row = y * n;
                let mut x = x0 as usize;
                let x_end = x1 as usize + 1;
                while x < x_end {
                    let seg_len = (x_end - x).min(DIST_SEG);
                    let seg = &mut dist[..seg_len];
                    fill_dist_row(seg, x, pc.cx, dy2);
                    for (j, &d) in seg.iter().enumerate() {
                        let p = row + x + j;
                        let t_arg = alpha * (pc.r - d);
                        if t_arg >= SIGMOID_SAT {
                            // f = 1.0 exactly, h = 0: only ∂q survives.
                            let w = e_sat / z[p];
                            let dm_dv = w * (1.0 + beta * pc.q - beta * m[p]);
                            gq += gm[p] * dm_dv;
                            continue;
                        }
                        let f = sigmoid(t_arg);
                        let v = pc.q * f;
                        let w = (beta * v).exp() / z[p];
                        let dm_dv = w * (1.0 + beta * v - beta * m[p]);
                        let g = gm[p] * dm_dv;
                        let h = f * (1.0 - f);
                        if d > 1e-9 {
                            let dx = (x + j) as f64 - pc.cx;
                            gx += g * alpha * pc.q * h * (dx / d);
                            gy += g * alpha * pc.q * h * (dyv / d);
                        }
                        gr += g * alpha * pc.q * h;
                        gq += g * f;
                    }
                    x += seg_len;
                }
            }
            part[4 * i] += gx;
            part[4 * i + 1] += gy;
            part[4 * i + 2] += gr;
            part[4 * i + 3] += gq;
        }
    });
    cfaopc_trace::counters::BACKWARD_SCAN_NS.add(started.elapsed().as_nanos() as u64);

    let merge_started = std::time::Instant::now();
    for (i, pc) in placed.iter().enumerate() {
        let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
        for b in 0..bands {
            let base = b * stride + 4 * i;
            gx += partials[base];
            gy += partials[base + 1];
            gr += partials[base + 2];
            gq += partials[base + 3];
        }
        grads[4 * i] = gx * pc.gate_x;
        grads[4 * i + 1] = gy * pc.gate_y;
        grads[4 * i + 2] = gr * pc.gate_r;
        grads[4 * i + 3] = gq;
    }
    cfaopc_trace::counters::BACKWARD_MERGE_NS.add(merge_started.elapsed().as_nanos() as u64);
}

/// The retained serial reference implementation of [`compose_soft`]: one
/// flat pass per circle, no tiling, no parallelism. Ground truth for the
/// bit-identity property tests.
pub fn compose_soft_serial(
    circles: &SparseCircles,
    config: &ComposeConfig,
    beta: f64,
) -> SoftComposite {
    let n = config.size;
    let mut num = Grid2D::new(n, n, 0.0f64);
    let mut norm = Grid2D::new(n, n, 1.0f64);
    let mut placed = Vec::new();
    place_circles(circles, config, &mut placed);

    for pc in &placed {
        let Some((x0, x1, y0, y1)) = pc.window(n, config.window_margin) else {
            continue;
        };
        for y in y0..=y1 {
            for x in x0..=x1 {
                let d = ((x as f64 - pc.cx).powi(2) + (y as f64 - pc.cy).powi(2)).sqrt();
                let v = pc.q * sigmoid(config.alpha * (pc.r - d));
                let e = (beta * v).exp();
                num[(x as usize, y as usize)] += v * e;
                norm[(x as usize, y as usize)] += e;
            }
        }
    }
    for (m, &z) in num.as_mut_slice().iter_mut().zip(norm.as_slice()) {
        *m /= z;
    }
    SoftComposite {
        mask: num,
        norm,
        placed,
        config: *config,
        beta,
    }
}

impl SoftComposite {
    /// Backward pass: chain `∂L/∂M̄` into the flat `4n` parameter
    /// gradient, spreading each pixel's gradient across *all* circles
    /// covering it (softmax weights), unlike the paper's argmax routing.
    ///
    /// Bands (tile rows) run in parallel, each accumulating private
    /// partial gradients merged by a deterministic ascending-band
    /// reduction; bit-identical to [`SoftComposite::backward_serial`].
    ///
    /// Callers iterating should prefer [`SoftWorkspace::backward_into`],
    /// which reuses the band-partial scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics on a gradient shape mismatch.
    pub fn backward(&self, grad_mask: &Grid2D<f64>) -> Vec<f64> {
        let mut grads = vec![0.0f64; self.placed.len() * 4];
        let mut partials = Vec::new();
        backward_soft_into(
            &self.placed,
            &self.config,
            self.beta,
            &self.mask,
            &self.norm,
            grad_mask,
            &mut partials,
            &mut grads,
        );
        grads
    }

    /// The retained serial reference for [`SoftComposite::backward`].
    ///
    /// Accumulation is **band-blocked** (per-tile-row partials reduced
    /// in ascending band order before the STE gates), fixing the
    /// floating-point summation tree the parallel fused pass reproduces
    /// exactly — see [`Composite::backward_serial`] for the rationale.
    ///
    /// [`Composite::backward_serial`]: crate::Composite::backward_serial
    ///
    /// # Panics
    ///
    /// Panics on a gradient shape mismatch.
    pub fn backward_serial(&self, grad_mask: &Grid2D<f64>) -> Vec<f64> {
        let n = self.config.size;
        assert!(
            grad_mask.width() == n && grad_mask.height() == n,
            "gradient shape mismatch"
        );
        let alpha = self.config.alpha;
        let beta = self.beta;
        let bands = n.div_ceil(TILE);
        let stride = self.placed.len() * 4;
        let mut partials = vec![0.0f64; bands * stride];
        for b in 0..bands {
            let band_y0 = b * TILE;
            let band_y1 = (band_y0 + TILE).min(n);
            let part = &mut partials[b * stride..(b + 1) * stride];
            for (i, pc) in self.placed.iter().enumerate() {
                let Some((x0, x1, y0, y1)) = pc.window(n, self.config.window_margin) else {
                    continue;
                };
                let row0 = (y0 as usize).max(band_y0);
                let row1 = (y1 as usize + 1).min(band_y1);
                let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
                for y in row0..row1 {
                    for x in x0..=x1 {
                        let p = (x as usize, y);
                        let dx = x as f64 - pc.cx;
                        let dy = y as f64 - pc.cy;
                        let d = (dx * dx + dy * dy).sqrt();
                        let f = sigmoid(alpha * (pc.r - d));
                        let v = pc.q * f;
                        let w = (beta * v).exp() / self.norm[p];
                        let dm_dv = w * (1.0 + beta * v - beta * self.mask[p]);
                        let g = grad_mask[p] * dm_dv;
                        let h = f * (1.0 - f);
                        if d > 1e-9 {
                            gx += g * alpha * pc.q * h * (dx / d);
                            gy += g * alpha * pc.q * h * (dy / d);
                        }
                        gr += g * alpha * pc.q * h;
                        gq += g * f;
                    }
                }
                part[4 * i] += gx;
                part[4 * i + 1] += gy;
                part[4 * i + 2] += gr;
                part[4 * i + 3] += gq;
            }
        }
        let mut grads = vec![0.0f64; stride];
        for (i, pc) in self.placed.iter().enumerate() {
            let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
            for b in 0..bands {
                let base = b * stride + 4 * i;
                gx += partials[base];
                gy += partials[base + 1];
                gr += partials[base + 2];
                gq += partials[base + 3];
            }
            grads[4 * i] = gx * pc.gate_x;
            grads[4 * i + 1] = gy * pc.gate_y;
            grads[4 * i + 2] = gr * pc.gate_r;
            grads[4 * i + 3] = gq;
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::compose;
    use crate::repr::CircleParams;

    fn two_circles() -> SparseCircles {
        SparseCircles {
            circles: vec![
                CircleParams {
                    x: 12.3,
                    y: 15.1,
                    r: 5.2,
                    q: 0.9,
                },
                CircleParams {
                    x: 18.7,
                    y: 16.4,
                    r: 4.1,
                    q: 0.7,
                },
            ],
        }
    }

    fn cfg(n: usize) -> ComposeConfig {
        let mut c = ComposeConfig::new(n, 2, 12);
        c.quantize = false;
        c
    }

    #[test]
    fn high_beta_approaches_hard_max() {
        let circles = two_circles();
        let config = cfg(32);
        let soft = compose_soft(&circles, &config, 200.0);
        let hard = compose(&circles, &config);
        for (a, b) in soft.mask.as_slice().iter().zip(hard.mask.as_slice()) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn background_stays_zero() {
        let circles = two_circles();
        let soft = compose_soft(&circles, &cfg(32), 20.0);
        assert!(soft.mask[(0, 0)].abs() < 1e-9);
        assert!(soft.mask[(31, 31)].abs() < 1e-9);
    }

    #[test]
    fn mask_is_bounded_by_max_activation() {
        let circles = two_circles();
        let soft = compose_soft(&circles, &cfg(32), 20.0);
        for &v in soft.mask.as_slice() {
            assert!((-1e-12..=0.9 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn tiled_matches_serial_reference() {
        let circles = two_circles();
        let config = cfg(32);
        let soft = compose_soft(&circles, &config, 20.0);
        let serial = compose_soft_serial(&circles, &config, 20.0);
        assert_eq!(soft.mask, serial.mask);
        assert_eq!(soft.norm, serial.norm);
        let grad = Grid2D::new(32, 32, 0.7);
        assert_eq!(soft.backward(&grad), serial.backward_serial(&grad));
    }

    #[test]
    fn zero_activation_circles_still_feed_the_normalizer() {
        // q = 0 circles must not be pruned: e^{β·0} = 1 still joins the
        // softmax normalizer on every covered pixel.
        let mut circles = two_circles();
        circles.circles.push(CircleParams {
            x: 12.3,
            y: 15.1,
            r: 5.2,
            q: 0.0,
        });
        let config = cfg(32);
        let with_zero = compose_soft(&circles, &config, 20.0);
        let without = compose_soft(&two_circles(), &config, 20.0);
        assert!(
            with_zero.mask[(12, 15)] < without.mask[(12, 15)],
            "the q=0 circle must dilute the softmax"
        );
        let serial = compose_soft_serial(&circles, &config, 20.0);
        assert_eq!(with_zero.mask, serial.mask);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let n = 32;
        let config = cfg(n);
        let beta = 20.0;
        let weights: Vec<f64> = (0..n * n)
            .map(|i| ((i as f64 * 0.377).cos() * 0.5 + 0.5) * 0.1)
            .collect();
        let w_grid = Grid2D::from_vec(n, n, weights);
        let j = |circles: &SparseCircles| -> f64 {
            compose_soft(circles, &config, beta)
                .mask
                .as_slice()
                .iter()
                .zip(w_grid.as_slice())
                .map(|(&m, &w)| m * w)
                .sum()
        };
        let base = two_circles();
        let analytic = compose_soft(&base, &config, beta).backward(&w_grid);
        let eps = 1e-6;
        for p in 0..8 {
            let mut flat = base.to_flat();
            flat[p] += eps;
            let mut plus = base.clone();
            plus.set_from_flat(&flat);
            flat[p] -= 2.0 * eps;
            let mut minus = base.clone();
            minus.set_from_flat(&flat);
            let fd = (j(&plus) - j(&minus)) / (2.0 * eps);
            assert!(
                (fd - analytic[p]).abs() < 2e-4 * fd.abs().max(analytic[p].abs()).max(1.0),
                "param {p}: fd={fd} analytic={}",
                analytic[p]
            );
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_compose_after_shrink() {
        // A workspace that rendered a big mask must fully reset stale
        // tiles (numerator 0, normalizer 1) when the next circle set
        // covers less area.
        let big = SparseCircles {
            circles: (0..6)
                .map(|i| CircleParams {
                    x: 5.0 + 4.0 * i as f64,
                    y: 5.0 + 4.0 * i as f64,
                    r: 6.0,
                    q: 1.0,
                })
                .collect(),
        };
        let small = SparseCircles {
            circles: vec![CircleParams {
                x: 8.0,
                y: 8.0,
                r: 4.0,
                q: 0.7,
            }],
        };
        let config = cfg(32);
        let mut ws = SoftWorkspace::new();
        ws.compose(&big, &config, 20.0);
        ws.compose(&small, &config, 20.0);
        let fresh = compose_soft(&small, &config, 20.0);
        assert_eq!(ws.mask(), &fresh.mask);
        let grad = Grid2D::new(32, 32, 0.4);
        let mut grads = vec![99.0; 2]; // wrong size and stale values
        ws.backward_into(&grad, &mut grads);
        assert_eq!(grads, fresh.backward(&grad));
    }

    #[test]
    fn workspace_backward_matches_composite_backward() {
        let circles = two_circles();
        let config = cfg(32);
        let mut ws = SoftWorkspace::new();
        ws.compose(&circles, &config, 20.0);
        let grad = Grid2D::new(32, 32, 0.3);
        let mut grads = Vec::new();
        ws.backward_into(&grad, &mut grads);
        let reference = compose_soft(&circles, &config, 20.0).backward(&grad);
        assert_eq!(grads, reference);
    }

    #[test]
    fn gradient_reaches_occluded_circles() {
        // Two concentric circles: under hard-max routing only one gets
        // gradient at each pixel; the softmax spreads it to both.
        let circles = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 16.0,
                    y: 16.0,
                    r: 6.0,
                    q: 1.0,
                },
                CircleParams {
                    x: 16.0,
                    y: 16.0,
                    r: 6.0,
                    q: 0.8,
                },
            ],
        };
        let config = cfg(32);
        let soft = compose_soft(&circles, &config, 20.0);
        let grad = Grid2D::new(32, 32, 1.0);
        let g = soft.backward(&grad);
        assert!(g[7].abs() > 1e-6, "occluded circle's q gradient is zero");
        let hard = compose(&circles, &config);
        let gh = hard.backward(&grad);
        assert_eq!(gh[7], 0.0, "hard max must route past the weaker circle");
    }
}
