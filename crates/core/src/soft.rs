//! Softmax (log-sum-exp–weighted) circle composition — the smooth
//! alternative to the paper's hard max (Eq. 11), used by the
//! `ablation_compose` study.
//!
//! The paper routes gradients through the argmax circle only; a softmax
//! composition spreads them across every circle covering a pixel:
//!
//! ```text
//! M̄(p) = Σᵢ wᵢ vᵢ,   vᵢ = qᵢ fᵢ(p),   wᵢ = e^{βvᵢ} / (1 + Σⱼ e^{βvⱼ})
//! ```
//!
//! with an implicit background term `v₀ = 0` so empty pixels stay 0 and
//! the weights are well normalized. As `β → ∞` this approaches the hard
//! max. The backward pass is exact:
//! `∂M̄/∂vₖ = wₖ (1 + β vₖ − β M̄)`.

use crate::compose::ComposeConfig;
use crate::repr::SparseCircles;
use crate::ste::ste;
use cfaopc_grid::Grid2D;
use cfaopc_litho::sigmoid;

/// Dense mask produced by the softmax composition, with the state needed
/// for its backward pass.
#[derive(Debug, Clone)]
pub struct SoftComposite {
    /// The dense mask `M̄`.
    pub mask: Grid2D<f64>,
    /// Normalizer `1 + Σ e^{βv}` per pixel.
    norm: Grid2D<f64>,
    placed: Vec<(f64, f64, f64, f64, f64, f64, f64)>, // cx, cy, r, q, gates
    config: ComposeConfig,
    beta: f64,
}

/// Builds the softmax-composed dense mask.
///
/// `beta` controls the sharpness (`beta → ∞` recovers the max
/// composition of [`crate::compose`]).
pub fn compose_soft(circles: &SparseCircles, config: &ComposeConfig, beta: f64) -> SoftComposite {
    let n = config.size;
    let mut num = Grid2D::new(n, n, 0.0f64);
    let mut norm = Grid2D::new(n, n, 1.0f64); // background e^{β·0}
    let placed: Vec<(f64, f64, f64, f64, f64, f64, f64)> = circles
        .circles
        .iter()
        .map(|c| {
            if config.quantize {
                let sx = ste(c.x, 0.0, (n - 1) as f64);
                let sy = ste(c.y, 0.0, (n - 1) as f64);
                let sr = ste(c.r, config.r_min as f64, config.r_max as f64);
                let (gate_x, gate_y, gate_r) = if config.clip_gates {
                    (sx.gate, sy.gate, sr.gate)
                } else {
                    (1.0, 1.0, 1.0)
                };
                (
                    sx.value as f64,
                    sy.value as f64,
                    sr.value as f64,
                    c.q,
                    gate_x,
                    gate_y,
                    gate_r,
                )
            } else {
                (c.x, c.y, c.r, c.q, 1.0, 1.0, 1.0)
            }
        })
        .collect();

    for &(cx, cy, r, q, ..) in &placed {
        let half = r.ceil() as i32 + config.window_margin;
        let x0 = (cx.round() as i32 - half).max(0);
        let x1 = (cx.round() as i32 + half).min(n as i32 - 1);
        let y0 = (cy.round() as i32 - half).max(0);
        let y1 = (cy.round() as i32 + half).min(n as i32 - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
                let v = q * sigmoid(config.alpha * (r - d));
                let e = (beta * v).exp();
                num[(x as usize, y as usize)] += v * e;
                norm[(x as usize, y as usize)] += e;
            }
        }
    }
    let mut mask = Grid2D::new(n, n, 0.0f64);
    for i in 0..n * n {
        mask.as_mut_slice()[i] = num.as_slice()[i] / norm.as_slice()[i];
    }
    SoftComposite {
        mask,
        norm,
        placed,
        config: *config,
        beta,
    }
}

impl SoftComposite {
    /// Backward pass: chain `∂L/∂M̄` into the flat `4n` parameter
    /// gradient, spreading each pixel's gradient across *all* circles
    /// covering it (softmax weights), unlike the paper's argmax routing.
    ///
    /// # Panics
    ///
    /// Panics on a gradient shape mismatch.
    pub fn backward(&self, grad_mask: &Grid2D<f64>) -> Vec<f64> {
        let n = self.config.size;
        assert!(
            grad_mask.width() == n && grad_mask.height() == n,
            "gradient shape mismatch"
        );
        let alpha = self.config.alpha;
        let beta = self.beta;
        let mut grads = vec![0.0f64; self.placed.len() * 4];
        for (i, &(cx, cy, r, q, gate_x, gate_y, gate_r)) in self.placed.iter().enumerate() {
            let half = r.ceil() as i32 + self.config.window_margin;
            let x0 = (cx.round() as i32 - half).max(0);
            let x1 = (cx.round() as i32 + half).min(n as i32 - 1);
            let y0 = (cy.round() as i32 - half).max(0);
            let y1 = (cy.round() as i32 + half).min(n as i32 - 1);
            let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let p = (x as usize, y as usize);
                    let dx = x as f64 - cx;
                    let dy = y as f64 - cy;
                    let d = (dx * dx + dy * dy).sqrt();
                    let f = sigmoid(alpha * (r - d));
                    let v = q * f;
                    let w = (beta * v).exp() / self.norm[p];
                    let dm_dv = w * (1.0 + beta * v - beta * self.mask[p]);
                    let g = grad_mask[p] * dm_dv;
                    let h = f * (1.0 - f);
                    if d > 1e-9 {
                        gx += g * alpha * q * h * (dx / d);
                        gy += g * alpha * q * h * (dy / d);
                    }
                    gr += g * alpha * q * h;
                    gq += g * f;
                }
            }
            grads[4 * i] = gx * gate_x;
            grads[4 * i + 1] = gy * gate_y;
            grads[4 * i + 2] = gr * gate_r;
            grads[4 * i + 3] = gq;
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::compose;
    use crate::repr::CircleParams;

    fn two_circles() -> SparseCircles {
        SparseCircles {
            circles: vec![
                CircleParams {
                    x: 12.3,
                    y: 15.1,
                    r: 5.2,
                    q: 0.9,
                },
                CircleParams {
                    x: 18.7,
                    y: 16.4,
                    r: 4.1,
                    q: 0.7,
                },
            ],
        }
    }

    fn cfg(n: usize) -> ComposeConfig {
        let mut c = ComposeConfig::new(n, 2, 12);
        c.quantize = false;
        c
    }

    #[test]
    fn high_beta_approaches_hard_max() {
        let circles = two_circles();
        let config = cfg(32);
        let soft = compose_soft(&circles, &config, 200.0);
        let hard = compose(&circles, &config);
        for (a, b) in soft.mask.as_slice().iter().zip(hard.mask.as_slice()) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn background_stays_zero() {
        let circles = two_circles();
        let soft = compose_soft(&circles, &cfg(32), 20.0);
        assert!(soft.mask[(0, 0)].abs() < 1e-9);
        assert!(soft.mask[(31, 31)].abs() < 1e-9);
    }

    #[test]
    fn mask_is_bounded_by_max_activation() {
        let circles = two_circles();
        let soft = compose_soft(&circles, &cfg(32), 20.0);
        for &v in soft.mask.as_slice() {
            assert!((-1e-12..=0.9 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let n = 32;
        let config = cfg(n);
        let beta = 20.0;
        let weights: Vec<f64> = (0..n * n)
            .map(|i| ((i as f64 * 0.377).cos() * 0.5 + 0.5) * 0.1)
            .collect();
        let w_grid = Grid2D::from_vec(n, n, weights);
        let j = |circles: &SparseCircles| -> f64 {
            compose_soft(circles, &config, beta)
                .mask
                .as_slice()
                .iter()
                .zip(w_grid.as_slice())
                .map(|(&m, &w)| m * w)
                .sum()
        };
        let base = two_circles();
        let analytic = compose_soft(&base, &config, beta).backward(&w_grid);
        let eps = 1e-6;
        for p in 0..8 {
            let mut flat = base.to_flat();
            flat[p] += eps;
            let mut plus = base.clone();
            plus.set_from_flat(&flat);
            flat[p] -= 2.0 * eps;
            let mut minus = base.clone();
            minus.set_from_flat(&flat);
            let fd = (j(&plus) - j(&minus)) / (2.0 * eps);
            assert!(
                (fd - analytic[p]).abs() < 2e-4 * fd.abs().max(analytic[p].abs()).max(1.0),
                "param {p}: fd={fd} analytic={}",
                analytic[p]
            );
        }
    }

    #[test]
    fn gradient_reaches_occluded_circles() {
        // Two concentric circles: under hard-max routing only one gets
        // gradient at each pixel; the softmax spreads it to both.
        let circles = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 16.0,
                    y: 16.0,
                    r: 6.0,
                    q: 1.0,
                },
                CircleParams {
                    x: 16.0,
                    y: 16.0,
                    r: 6.0,
                    q: 0.8,
                },
            ],
        };
        let config = cfg(32);
        let soft = compose_soft(&circles, &config, 20.0);
        let grad = Grid2D::new(32, 32, 1.0);
        let g = soft.backward(&grad);
        assert!(g[7].abs() > 1e-6, "occluded circle's q gradient is zero");
        let hard = compose(&circles, &config);
        let gh = hard.backward(&grad);
        assert_eq!(gh[7], 0.0, "hard max must route past the weaker circle");
    }
}
