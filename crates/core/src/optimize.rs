//! CircleOpt: the two-stage optimization-based CFAOPC solver (paper §4).
//!
//! Stage 1 (pixel-level initialization, §4.1): a short MOSAIC-style
//! pixel ILT run generates rough mask shapes and SRAFs.
//!
//! Stage 2 (circle-based ILT, §4.2): the pixel mask is reparameterized
//! into sparse circles via CircleRule; then every iteration
//!
//! 1. quantizes centers/radii through straight-through estimators
//!    (Eq. 7–9),
//! 2. renders the dense mask with the differentiable circle-to-pixel
//!    transformation (Eq. 10–11),
//! 3. evaluates the relaxed `L2 + PVB` lithography loss and its pixel
//!    gradient (Eq. 15 without the sparsity term, via the hand-derived
//!    adjoint),
//! 4. routes the gradient back to the `4n` circle parameters (Eq. 12–14,
//!    windowed aggregation Eq. 16),
//! 5. adds the Lasso sparsity subgradient `γ·sign(q)` (Eq. 17), and
//! 6. takes an Adam step.
//!
//! The final mask is the union of circles with `q > 0.5` — a mask that
//! satisfies the circular fracturing constraint *by construction*.

use crate::compose::{ComposeConfig, ComposeWorkspace};
use crate::repr::SparseCircles;
use crate::soft::SoftWorkspace;
use cfaopc_fracture::{circle_rule, CircleRuleConfig, CircularMask};
use cfaopc_grid::{
    disk_area, open, remove_small_regions, BitGrid, Connectivity, Grid2D, Structuring,
};
use cfaopc_ilt::{run_pixel_ilt_cancellable, IltEngine, Optimizer, OptimizerKind};
use cfaopc_litho::{
    loss_and_gradient_into, CancelToken, LithoError, LithoSimulator, LossValues, LossWeights,
    NonFiniteTerm,
};
use cfaopc_trace::{grad_norms, IterationRecord, Stage, TelemetrySink};
use serde::{Deserialize, Serialize};

/// CircleOpt hyper-parameters. Defaults are the paper's §5 constants:
/// optimization step 0.1, `γ = 3`, `α = 8`, radii `[12, 76]` nm, sample
/// distance 32 nm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircleOptConfig {
    /// Stage-1 pixel ILT steps ("only a few steps", §4.1).
    pub init_iterations: usize,
    /// Stage-2 circle-level ILT steps.
    pub circle_iterations: usize,
    /// Optimization step size (paper: 0.1), used as the Adam learning
    /// rate over the `4n` circle parameters.
    pub step: f64,
    /// Sparsity weight `γ` (paper: 3). Zero disables the regularizer
    /// (the Table 3 ablation).
    pub gamma: f64,
    /// Circular-window steepness `α` (paper: 8).
    pub alpha: f64,
    /// Gradient-window halfwidth beyond the radius, pixels (the paper
    /// limits `U` to a square "marginally larger than the diameter").
    pub window_margin: i32,
    /// CircleRule parameters for the sparse reparameterization (radius
    /// bounds double as the STE clip range).
    pub rule: CircleRuleConfig,
    /// Loss weights (Eq. 6 / Eq. 15 use 1/1).
    pub weights: LossWeights,
    /// Activation threshold for a circle to exist in the final mask.
    pub q_threshold: f64,
    /// Morphologically open the stage-1 mask with a 1-px disk to drop
    /// sub-resolution specks before fracturing.
    pub cleanup_init: bool,
    /// How circles combine into the dense mask: the paper's hard max
    /// with argmax gradient routing (Eq. 11–14), or the smooth softmax
    /// alternative (ablation).
    pub composition: Composition,
    /// Apply the STE indicator gates (Eq. 9). Disabling lets parameters
    /// drift outside the writer's limits (ablation).
    pub ste_gates: bool,
    /// Activation floor passed to the composition engine: circles with
    /// `q ≤ q_floor` are skipped by the hard-max forward/backward passes.
    /// The default `0.0` is exact (such circles can never claim a pixel),
    /// so compose work shrinks as the Lasso regularizer prunes shots;
    /// raising it trades exactness for speed. Ignored by the softmax
    /// composition.
    pub q_floor: f64,
}

/// Dense-mask composition strategy (see [`CircleOptConfig::composition`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Composition {
    /// Paper Eq. 11: per-pixel max, gradients through the argmax only.
    Max,
    /// Softmax-weighted blend with sharpness `beta`; gradients reach
    /// every circle covering a pixel.
    Softmax {
        /// Sharpness; `→ ∞` recovers [`Composition::Max`].
        beta: f64,
    },
}

impl Default for CircleOptConfig {
    fn default() -> Self {
        CircleOptConfig {
            init_iterations: 12,
            circle_iterations: 40,
            step: 0.1,
            gamma: 3.0,
            alpha: 8.0,
            window_margin: 3,
            rule: CircleRuleConfig::default(),
            weights: LossWeights::default(),
            q_threshold: 0.5,
            cleanup_init: true,
            composition: Composition::Max,
            ste_gates: true,
            q_floor: 0.0,
        }
    }
}

/// Per-iteration trace of the circle-level stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircleOptTrace {
    /// Relaxed lithography losses at this iteration.
    pub loss: LossValues,
    /// Sparsity penalty `γ Σ|qᵢ|`.
    pub sparsity: f64,
    /// Circles with `q` above the activation threshold.
    pub active: usize,
}

/// Outcome of a CircleOpt run.
#[derive(Debug, Clone)]
pub struct CircleOptResult {
    /// Final sparse circular representation (all circles, incl. pruned).
    pub circles: SparseCircles,
    /// The final fractured mask: active circles, quantized.
    pub mask: CircularMask,
    /// The final mask rasterized: a **derived, cached** field, computed
    /// exactly once at the end of the run and always equal to
    /// `mask.rasterize(width, height)` at the simulator grid size. Use
    /// this instead of re-rasterizing `mask`.
    pub mask_raster: BitGrid,
    /// The stage-1 pixel mask that seeded the reparameterization.
    pub init_mask: BitGrid,
    /// Stage-2 per-iteration trace.
    pub history: Vec<CircleOptTrace>,
}

impl CircleOptResult {
    /// Final shot count (`#Shot`).
    pub fn shot_count(&self) -> usize {
        self.mask.shot_count()
    }
}

/// Runs the full CircleOpt pipeline on `target`.
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] when `target` does not match the
/// simulator grid.
///
/// # Examples
///
/// ```no_run
/// use cfaopc_core::{run_circleopt, CircleOptConfig};
/// use cfaopc_grid::{fill_rect, BitGrid, Rect};
/// use cfaopc_litho::{LithoConfig, LithoSimulator};
///
/// # fn main() -> Result<(), cfaopc_litho::LithoError> {
/// let sim = LithoSimulator::new(LithoConfig::default())?;
/// let mut target = BitGrid::new(512, 512);
/// fill_rect(&mut target, Rect::new(100, 120, 130, 380));
/// let result = run_circleopt(&sim, &target, &CircleOptConfig::default())?;
/// println!("#Shot = {}", result.shot_count());
/// # Ok(())
/// # }
/// ```
pub fn run_circleopt(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &CircleOptConfig,
) -> Result<CircleOptResult, LithoError> {
    run_circleopt_impl(sim, target, config, None, None, None)
}

/// [`run_circleopt`] with a [`TelemetrySink`] receiving one
/// [`IterationRecord`] per optimizer step: stage-1 pixel iterations
/// ([`Stage::PixelIlt`]) followed by stage-2 circle iterations
/// ([`Stage::CircleOpt`], where `sparsity` is the Lasso penalty
/// `γ Σ|qᵢ|` and `active` counts circles above `q_threshold`).
///
/// Attaching a sink never changes the optimization — results are
/// bit-identical to the untraced run, and per-record work is
/// allocation-free when the sink is (see `cfaopc_trace::MemorySink`).
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] on a grid mismatch, or
/// [`LithoError::NonFinite`] when the numerical-health guard trips.
pub fn run_circleopt_traced(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &CircleOptConfig,
    sink: &mut dyn TelemetrySink,
) -> Result<CircleOptResult, LithoError> {
    run_circleopt_impl(sim, target, config, None, Some(sink), None)
}

/// [`run_circleopt_traced`] plus cooperative cancellation: the token is
/// polled at the top of every stage-1 pixel iteration and every stage-2
/// circle iteration, aborting with [`LithoError::Cancelled`] before any
/// further simulation work.
///
/// Cancellation takes the same mid-run exit as the
/// [`LithoError::NonFinite`] health guard, so an aborted run leaves the
/// simulator's shared state (kernels, FFT plans, buffer pools) and the
/// worker pool fully reusable by the next run — this is what lets a
/// daemon cancel one job and keep serving (see `cfaopc-serve`).
///
/// # Errors
///
/// As [`run_circleopt_traced`], plus [`LithoError::Cancelled`] when
/// `cancel` fires mid-run.
pub fn run_circleopt_cancellable(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &CircleOptConfig,
    sink: &mut dyn TelemetrySink,
    cancel: &CancelToken,
) -> Result<CircleOptResult, LithoError> {
    run_circleopt_impl(sim, target, config, None, Some(sink), Some(cancel))
}

/// Runs only the circle-level stage from an existing sparse circular
/// representation — a warm restart. Skips the pixel-level initialization
/// and the CircleRule reparameterization; useful for parameter sweeps
/// and incremental re-optimization after small target edits.
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] when `target` does not match the
/// simulator grid.
pub fn run_circleopt_from(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &CircleOptConfig,
    circles: SparseCircles,
) -> Result<CircleOptResult, LithoError> {
    run_circleopt_impl(sim, target, config, Some(circles), None, None)
}

/// [`run_circleopt_from`] with a [`TelemetrySink`] — a traced warm
/// restart (see [`run_circleopt_traced`] for the record semantics).
///
/// # Errors
///
/// Returns [`LithoError::ShapeMismatch`] on a grid mismatch, or
/// [`LithoError::NonFinite`] when the numerical-health guard trips.
pub fn run_circleopt_from_traced(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &CircleOptConfig,
    circles: SparseCircles,
    sink: &mut dyn TelemetrySink,
) -> Result<CircleOptResult, LithoError> {
    run_circleopt_impl(sim, target, config, Some(circles), Some(sink), None)
}

fn run_circleopt_impl(
    sim: &LithoSimulator,
    target: &BitGrid,
    config: &CircleOptConfig,
    warm_start: Option<SparseCircles>,
    mut sink: Option<&mut (dyn TelemetrySink + '_)>,
    cancel: Option<&CancelToken>,
) -> Result<CircleOptResult, LithoError> {
    let _span = cfaopc_trace::span("core.circleopt");
    let n = sim.size();
    let pixel_nm = sim.config().pixel_nm();
    let (r_min, r_max) = config.rule.radius_range_px(pixel_nm);

    let (mut circles, init_mask) = match warm_start {
        Some(circles) => (circles, BitGrid::new(n, n)),
        None => {
            // Stage 1: pixel-level initialization (MOSAIC, a few steps).
            let mut init_cfg = IltEngine::Mosaic.config(config.init_iterations);
            init_cfg.weights = config.weights;
            let init = run_pixel_ilt_cancellable(
                sim,
                target,
                &init_cfg,
                None,
                sink.as_deref_mut(),
                cancel,
            )?;
            let init_mask = if config.cleanup_init {
                // Writability hygiene: 1-px opening, then drop regions
                // smaller than the minimum writable shot — they cannot
                // survive the circular constraint anyway.
                let opened = open(&init.mask_binary, Structuring::Disk(1));
                remove_small_regions(&opened, disk_area(r_min), Connectivity::Eight)
            } else {
                init.mask_binary.clone()
            };
            // Sparse circular reparameterization (Algorithm 1).
            let seed_mask = circle_rule(&init_mask, &config.rule, pixel_nm);
            (SparseCircles::from_circular_mask(&seed_mask), init_mask)
        }
    };
    if circles.is_empty() {
        return Ok(CircleOptResult {
            mask: CircularMask::new(),
            mask_raster: BitGrid::new(n, n),
            circles,
            init_mask,
            history: Vec::new(),
        });
    }

    let compose_cfg = ComposeConfig {
        alpha: config.alpha,
        window_margin: config.window_margin,
        size: n,
        r_min,
        r_max,
        quantize: true,
        clip_gates: config.ste_gates,
        q_floor: config.q_floor,
    };
    let target_real = target.to_real();
    let mut flat = circles.to_flat();
    let mut optimizer = Optimizer::new(OptimizerKind::adam(config.step), flat.len());
    let mut history = Vec::with_capacity(config.circle_iterations);

    // Every buffer the iteration touches lives outside the loop (the
    // compose workspaces, the mask gradient, the parameter gradient), so
    // the steady-state iteration — hard-max or softmax — performs zero
    // heap allocations, asserted by `tests/alloc.rs`.
    let mut ws = ComposeWorkspace::new();
    let mut soft_ws = SoftWorkspace::new();
    let mut grad_mask = Grid2D::new(n, n, 0.0);
    let mut grads: Vec<f64> = Vec::new();
    for it in 0..config.circle_iterations {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(LithoError::Cancelled { iteration: it });
        }
        circles.set_from_flat(&flat);
        let loss = match config.composition {
            Composition::Max => {
                ws.compose(&circles, &compose_cfg);
                let loss = loss_and_gradient_into(
                    sim,
                    ws.mask(),
                    &target_real,
                    config.weights,
                    &mut grad_mask,
                )?;
                ws.backward_into(&grad_mask, &mut grads);
                loss
            }
            Composition::Softmax { beta } => {
                soft_ws.compose(&circles, &compose_cfg, beta);
                let loss = loss_and_gradient_into(
                    sim,
                    soft_ws.mask(),
                    &target_real,
                    config.weights,
                    &mut grad_mask,
                )?;
                soft_ws.backward_into(&grad_mask, &mut grads);
                loss
            }
        };
        // Lasso sparsity on the activations (Eq. 17): subgradient
        // γ·sign(q), 0 at q = 0.
        let mut sparsity = 0.0;
        for (i, c) in circles.circles.iter().enumerate() {
            sparsity += c.q.abs();
            grads[4 * i + 3] += config.gamma * c.q.signum() * if c.q == 0.0 { 0.0 } else { 1.0 };
        }
        let sparsity = config.gamma * sparsity;
        let active = circles.active_count(config.q_threshold);
        history.push(CircleOptTrace {
            loss,
            sparsity,
            active,
        });
        // Numerical-health guard: a NaN/Inf loss, sparsity, or gradient
        // terminates the run now instead of burning the remaining
        // iterations on garbage. The gradient scan doubles as the
        // telemetry norms.
        let (grad_l2, grad_linf) = grad_norms(&grads);
        let term = loss.non_finite_term().or_else(|| {
            if !sparsity.is_finite() {
                Some(NonFiniteTerm::Sparsity)
            } else if !grad_l2.is_finite() || !grad_linf.is_finite() {
                Some(NonFiniteTerm::Gradient)
            } else {
                None
            }
        });
        if let Some(s) = sink.as_deref_mut() {
            s.record(&IterationRecord {
                stage: Stage::CircleOpt,
                iteration: it,
                loss_l2: loss.l2,
                loss_pvb: loss.pvb,
                loss_total: loss.total,
                sparsity,
                active,
                grad_l2,
                grad_linf,
            });
        }
        if let Some(term) = term {
            cfaopc_trace::counters::NONFINITE_ABORTS.incr();
            return Err(LithoError::NonFinite {
                iteration: it,
                term,
            });
        }
        optimizer.step(&mut flat, &grads);
    }
    circles.set_from_flat(&flat);

    let mask = circles.to_circular_mask(config.q_threshold, n, n, r_min, r_max);
    let mask_raster = mask.rasterize(n, n);
    Ok(CircleOptResult {
        mask,
        mask_raster,
        circles,
        init_mask,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_grid::{fill_rect, Rect};
    use cfaopc_litho::LithoConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig {
            size: 128,
            kernel_count: 6,
            ..LithoConfig::default()
        })
        .unwrap()
    }

    fn fast_cfg() -> CircleOptConfig {
        CircleOptConfig {
            init_iterations: 8,
            circle_iterations: 10,
            ..CircleOptConfig::default()
        }
    }

    fn bar_target(n: usize) -> BitGrid {
        let mut t = BitGrid::new(n, n);
        // 16 nm/px: a 96nm x 768nm bar.
        fill_rect(&mut t, Rect::new(61, 40, 67, 88));
        t
    }

    #[test]
    fn pipeline_produces_a_circular_mask() {
        let s = sim();
        let target = bar_target(s.size());
        let result = run_circleopt(&s, &target, &fast_cfg()).unwrap();
        assert!(result.shot_count() > 0, "no shots");
        let (r_min, r_max) = fast_cfg().rule.radius_range_px(s.config().pixel_nm());
        for shot in result.mask.shots() {
            assert!(shot.r >= r_min && shot.r <= r_max);
        }
        // The raster really is the union of the shots (circular
        // constraint by construction).
        assert_eq!(result.mask_raster, result.mask.rasterize(128, 128));
        assert_eq!(result.history.len(), 10);
    }

    #[test]
    fn circle_stage_descends_the_loss() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = CircleOptConfig {
            circle_iterations: 14,
            gamma: 0.0, // isolate the lithography objective
            ..fast_cfg()
        };
        let result = run_circleopt(&s, &target, &cfg).unwrap();
        let first = result.history.first().unwrap().loss.total;
        let last = result.history.last().unwrap().loss.total;
        assert!(
            last < first,
            "circle ILT failed to descend: {first} -> {last}"
        );
    }

    #[test]
    fn sparsity_prunes_shots() {
        let s = sim();
        let target = bar_target(s.size());
        let without = run_circleopt(
            &s,
            &target,
            &CircleOptConfig {
                gamma: 0.0,
                ..fast_cfg()
            },
        )
        .unwrap();
        let with = run_circleopt(
            &s,
            &target,
            &CircleOptConfig {
                gamma: 30.0, // aggressive to make the effect decisive
                ..fast_cfg()
            },
        )
        .unwrap();
        assert!(
            with.shot_count() < without.shot_count(),
            "sparsity failed to prune: {} vs {}",
            with.shot_count(),
            without.shot_count()
        );
        assert!(with.shot_count() > 0);
    }

    #[test]
    fn empty_target_yields_empty_mask() {
        let s = sim();
        let empty = BitGrid::new(s.size(), s.size());
        let result = run_circleopt(&s, &empty, &fast_cfg()).unwrap();
        assert_eq!(result.shot_count(), 0);
        assert!(result.history.is_empty());
        assert!(result.mask_raster.is_clear());
    }

    #[test]
    fn deterministic() {
        let s = sim();
        let target = bar_target(s.size());
        let a = run_circleopt(&s, &target, &fast_cfg()).unwrap();
        let b = run_circleopt(&s, &target, &fast_cfg()).unwrap();
        assert_eq!(a.mask, b.mask);
    }

    #[test]
    fn warm_restart_continues_from_given_circles() {
        let s = sim();
        let target = bar_target(s.size());
        let first = run_circleopt(&s, &target, &fast_cfg()).unwrap();
        let more = CircleOptConfig {
            circle_iterations: 5,
            ..fast_cfg()
        };
        let restarted = run_circleopt_from(&s, &target, &more, first.circles.clone()).unwrap();
        assert_eq!(restarted.history.len(), 5);
        assert!(restarted.shot_count() > 0);
        // The warm start skips stage 1 entirely.
        assert!(restarted.init_mask.is_clear());
        // Restarting must not blow up the objective.
        let before = first.history.last().unwrap().loss.total;
        let after = restarted.history.last().unwrap().loss.total;
        assert!(
            after < before * 1.5,
            "restart regressed: {before} -> {after}"
        );
    }

    #[test]
    fn rejects_mismatched_target() {
        let s = sim();
        let target = BitGrid::new(16, 16);
        assert!(run_circleopt(&s, &target, &fast_cfg()).is_err());
    }

    #[test]
    fn softmax_composition_descends_and_produces_shots() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = CircleOptConfig {
            circle_iterations: 14,
            gamma: 0.0,
            composition: Composition::Softmax { beta: 20.0 },
            ..fast_cfg()
        };
        let result = run_circleopt(&s, &target, &cfg).unwrap();
        assert!(result.shot_count() > 0);
        let first = result.history.first().unwrap().loss.total;
        let last = result.history.last().unwrap().loss.total;
        assert!(
            last < first,
            "softmax ILT failed to descend: {first} -> {last}"
        );
    }

    #[test]
    fn traced_run_is_bit_identical_and_covers_both_stages() {
        let s = sim();
        let target = bar_target(s.size());
        let cfg = fast_cfg();
        let plain = run_circleopt(&s, &target, &cfg).unwrap();
        let mut sink = cfaopc_trace::MemorySink::new();
        let traced = run_circleopt_traced(&s, &target, &cfg, &mut sink).unwrap();
        assert_eq!(plain.mask, traced.mask);
        assert_eq!(plain.mask_raster, traced.mask_raster);
        for (a, b) in plain.history.iter().zip(&traced.history) {
            assert_eq!(a.loss.total.to_bits(), b.loss.total.to_bits());
            assert_eq!(a.sparsity.to_bits(), b.sparsity.to_bits());
        }
        let recs = sink.records();
        assert_eq!(recs.len(), cfg.init_iterations + cfg.circle_iterations);
        assert!(recs[..cfg.init_iterations]
            .iter()
            .all(|r| r.stage == Stage::PixelIlt));
        let circle = &recs[cfg.init_iterations..];
        for (it, (r, h)) in circle.iter().zip(&plain.history).enumerate() {
            assert_eq!(r.stage, Stage::CircleOpt);
            assert_eq!(r.iteration, it);
            assert_eq!(r.loss_total.to_bits(), h.loss.total.to_bits());
            assert_eq!(r.sparsity.to_bits(), h.sparsity.to_bits());
            assert_eq!(r.active, h.active);
            assert!(r.grad_l2.is_finite() && r.grad_linf <= r.grad_l2);
        }
    }

    #[test]
    fn poisoned_weights_abort_the_circle_stage_with_typed_diagnostic() {
        let s = sim();
        let target = bar_target(s.size());
        // A finite stage-1 seeds the circles; the circle stage then runs
        // under poisoned weights and must trip the guard at iteration 0.
        let seeded = run_circleopt(&s, &target, &fast_cfg()).unwrap();
        let cfg = CircleOptConfig {
            weights: cfaopc_litho::LossWeights {
                l2: f64::NAN,
                pvb: 1.0,
            },
            ..fast_cfg()
        };
        match run_circleopt_from(&s, &target, &cfg, seeded.circles) {
            Err(LithoError::NonFinite { iteration, term }) => {
                assert_eq!(iteration, 0);
                assert_eq!(term, NonFiniteTerm::LossTotal);
            }
            other => panic!("expected NonFinite abort, got {other:?}"),
        }
    }
}
