//! Sparse circular reparameterization (paper §4.2).
//!
//! A mask becomes a list of four-element tuples
//! `{(x₁,y₁,r₁,q₁), …, (xₙ,yₙ,rₙ,qₙ)}`: center, radius and a learnable
//! *activation* `q` whose magnitude decides whether the circle exists in
//! the final mask (`q > 0.5` keeps the shot). All four entries are
//! continuous during optimization; the straight-through estimator of
//! [`crate::ste`] maps centers and radii back onto the integer pixel
//! grid.

use cfaopc_fracture::{CircleShot, CircularMask};
use serde::{Deserialize, Serialize};

/// One circle's continuous parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircleParams {
    /// Center column (continuous).
    pub x: f64,
    /// Center row (continuous).
    pub y: f64,
    /// Radius (continuous).
    pub r: f64,
    /// Activation; the circle exists in the final mask when `q > 0.5`.
    pub q: f64,
}

/// The sparse circular representation of a mask.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseCircles {
    /// Per-circle parameters.
    pub circles: Vec<CircleParams>,
}

impl SparseCircles {
    /// Builds the representation from a fractured mask, initializing
    /// every activation to 1 (paper: "We initialize qᵢ to 1 for all the
    /// circles").
    pub fn from_circular_mask(mask: &CircularMask) -> Self {
        SparseCircles {
            circles: mask
                .shots()
                .iter()
                .map(|s| CircleParams {
                    x: s.x as f64,
                    y: s.y as f64,
                    r: s.r as f64,
                    q: 1.0,
                })
                .collect(),
        }
    }

    /// Number of circles (alive or not).
    pub fn len(&self) -> usize {
        self.circles.len()
    }

    /// `true` when there are no circles.
    pub fn is_empty(&self) -> bool {
        self.circles.is_empty()
    }

    /// Number of circles with `q > threshold` (the final shot count).
    pub fn active_count(&self, threshold: f64) -> usize {
        self.circles.iter().filter(|c| c.q > threshold).count()
    }

    /// Recovers the fractured mask: circles with `q > threshold`,
    /// centers and radii rounded and clamped onto the grid — by
    /// construction this mask "definitely meets the circular constraints
    /// for CFAOPC since each circle serves as one shot" (paper §4.2).
    pub fn to_circular_mask(
        &self,
        threshold: f64,
        width: usize,
        height: usize,
        r_min: i32,
        r_max: i32,
    ) -> CircularMask {
        self.circles
            .iter()
            .filter(|c| c.q > threshold)
            .map(|c| {
                CircleShot::new(
                    (c.x.round() as i32).clamp(0, width as i32 - 1),
                    (c.y.round() as i32).clamp(0, height as i32 - 1),
                    (c.r.round() as i32).clamp(r_min, r_max),
                )
            })
            .collect()
    }

    /// Flattens to the `4n` parameter vector `[x₀,y₀,r₀,q₀, x₁, …]` the
    /// optimizer steps over.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.circles.len() * 4);
        for c in &self.circles {
            out.extend_from_slice(&[c.x, c.y, c.r, c.q]);
        }
        out
    }

    /// Rebuilds the parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` is not a multiple of 4 or does not match
    /// the current circle count.
    pub fn set_from_flat(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.circles.len() * 4, "flat length mismatch");
        for (c, chunk) in self.circles.iter_mut().zip(flat.chunks_exact(4)) {
            c.x = chunk[0];
            c.y = chunk[1];
            c.r = chunk[2];
            c.q = chunk[3];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseCircles {
        SparseCircles {
            circles: vec![
                CircleParams {
                    x: 10.2,
                    y: 20.7,
                    r: 5.4,
                    q: 0.9,
                },
                CircleParams {
                    x: 30.0,
                    y: 40.0,
                    r: 99.0,
                    q: 0.2,
                },
            ],
        }
    }

    #[test]
    fn from_circular_mask_inits_q_to_one() {
        let m = CircularMask::from_shots(vec![CircleShot::new(5, 6, 7)]);
        let s = SparseCircles::from_circular_mask(&m);
        assert_eq!(s.len(), 1);
        assert_eq!(s.circles[0].q, 1.0);
        assert_eq!(s.circles[0].x, 5.0);
    }

    #[test]
    fn active_count_thresholds_q() {
        let s = sample();
        assert_eq!(s.active_count(0.5), 1);
        assert_eq!(s.active_count(0.1), 2);
        assert_eq!(s.active_count(0.95), 0);
    }

    #[test]
    fn to_circular_mask_rounds_clamps_and_filters() {
        let s = sample();
        let m = s.to_circular_mask(0.5, 64, 64, 3, 19);
        assert_eq!(m.shot_count(), 1);
        let shot = m.shots()[0];
        assert_eq!((shot.x, shot.y), (10, 21));
        assert_eq!(shot.r, 5);
        // The inactive circle (q=0.2) with r=99 was dropped, not clamped.
    }

    #[test]
    fn flat_roundtrip() {
        let mut s = sample();
        let flat = s.to_flat();
        assert_eq!(flat.len(), 8);
        let mut flat2 = flat.clone();
        flat2[4] = 31.5;
        s.set_from_flat(&flat2);
        assert_eq!(s.circles[1].x, 31.5);
        assert_eq!(s.to_flat(), flat2);
    }

    #[test]
    #[should_panic(expected = "flat length mismatch")]
    fn set_from_flat_checks_len() {
        let mut s = sample();
        s.set_from_flat(&[0.0; 7]);
    }
}
