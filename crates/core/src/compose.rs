//! The differentiable circle-to-pixel transformation (paper Eq. 10–14).
//!
//! Forward: every circle contributes a *circular window*
//! `f(x,y) = σ(α(r′ − ‖(x,y) − (x′,y′)‖))` (Eq. 10) and the dense mask is
//! the per-pixel maximum of the activated windows,
//! `M̄(x,y) = maxᵢ qᵢ fᵢ(x,y)` (Eq. 11). The winning circle index is
//! recorded per pixel so the backward pass can route gradients only
//! through the argmax, exactly as Eq. 12–14 prescribe.
//!
//! Backward: given `∂L/∂M̄`, accumulate per-circle gradients over the
//! window `U` — a square marginally larger than the circle's diameter
//! (Eq. 16 and the paper's memory/compute rationale):
//!
//! ```text
//! ∂M̄/∂xᵢ = α qᵢ h (x − xᵢ′)/d · 𝟙[0,W](xᵢ)     (h = f(1−f), d = distance)
//! ∂M̄/∂rᵢ = α qᵢ h · 𝟙[Rmin,Rmax](rᵢ)
//! ∂M̄/∂qᵢ = f
//! ```

use crate::repr::SparseCircles;
use crate::ste::ste;
use cfaopc_grid::Grid2D;
use cfaopc_litho::sigmoid;

/// Parameters of the circle-to-pixel transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposeConfig {
    /// Window steepness `α` (paper §5 sets 8).
    pub alpha: f64,
    /// Halfwidth of the gradient window `U` beyond the radius, pixels.
    pub window_margin: i32,
    /// Grid width (= height) in pixels; also the STE clip bound for
    /// centers.
    pub size: usize,
    /// Minimum radius (STE clip bound), pixels.
    pub r_min: i32,
    /// Maximum radius (STE clip bound), pixels.
    pub r_max: i32,
    /// Quantize centers/radii through the STE (production behaviour).
    /// `false` keeps them continuous — used by the finite-difference
    /// tests to validate Eq. 12–14 without the rounding staircase.
    pub quantize: bool,
    /// Apply the STE indicator gates of Eq. 9 (block gradients outside
    /// the clip range). Disabling this is the `ablation_ste` study:
    /// parameters then drift past the writer's limits.
    pub clip_gates: bool,
}

impl ComposeConfig {
    /// Standard configuration for a `size × size` grid.
    pub fn new(size: usize, r_min: i32, r_max: i32) -> Self {
        ComposeConfig {
            alpha: 8.0,
            window_margin: 3,
            size,
            r_min,
            r_max,
            quantize: true,
            clip_gates: true,
        }
    }
}

/// One circle after (optional) STE quantization, with backward gates.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PlacedCircle {
    cx: f64,
    cy: f64,
    r: f64,
    q: f64,
    gate_x: f64,
    gate_y: f64,
    gate_r: f64,
}

/// The dense mask, its argmax routing map, and everything needed to run
/// the backward pass.
#[derive(Debug, Clone)]
pub struct Composite {
    /// The dense mask `M̄` (Eq. 11); zero where no circle wins.
    pub mask: Grid2D<f64>,
    /// Winning circle per pixel; `-1` = background (no positive window).
    pub argmax: Grid2D<i32>,
    placed: Vec<PlacedCircle>,
    config: ComposeConfig,
}

/// Builds the dense mask from the sparse circular representation.
///
/// # Examples
///
/// ```
/// use cfaopc_core::{compose, ComposeConfig, CircleParams, SparseCircles};
///
/// let circles = SparseCircles {
///     circles: vec![CircleParams { x: 16.0, y: 16.0, r: 6.0, q: 1.0 }],
/// };
/// let composite = compose(&circles, &ComposeConfig::new(32, 3, 19));
/// assert!(composite.mask[(16, 16)] > 0.99); // deep inside the circle
/// assert!(composite.mask[(0, 0)] < 1e-6);   // background
/// ```
pub fn compose(circles: &SparseCircles, config: &ComposeConfig) -> Composite {
    let n = config.size;
    let mut mask = Grid2D::new(n, n, 0.0f64);
    let mut argmax = Grid2D::new(n, n, -1i32);
    let placed: Vec<PlacedCircle> = circles
        .circles
        .iter()
        .map(|c| {
            if config.quantize {
                let sx = ste(c.x, 0.0, (n - 1) as f64);
                let sy = ste(c.y, 0.0, (n - 1) as f64);
                let sr = ste(c.r, config.r_min as f64, config.r_max as f64);
                let (gate_x, gate_y, gate_r) = if config.clip_gates {
                    (sx.gate, sy.gate, sr.gate)
                } else {
                    (1.0, 1.0, 1.0)
                };
                PlacedCircle {
                    cx: sx.value as f64,
                    cy: sy.value as f64,
                    r: sr.value as f64,
                    q: c.q,
                    gate_x,
                    gate_y,
                    gate_r,
                }
            } else {
                PlacedCircle {
                    cx: c.x,
                    cy: c.y,
                    r: c.r,
                    q: c.q,
                    gate_x: 1.0,
                    gate_y: 1.0,
                    gate_r: 1.0,
                }
            }
        })
        .collect();

    for (i, pc) in placed.iter().enumerate() {
        let half = pc.r.ceil() as i32 + config.window_margin;
        let x0 = (pc.cx.round() as i32 - half).max(0);
        let x1 = (pc.cx.round() as i32 + half).min(n as i32 - 1);
        let y0 = (pc.cy.round() as i32 - half).max(0);
        let y1 = (pc.cy.round() as i32 + half).min(n as i32 - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                let d = (((x as f64 - pc.cx).powi(2)) + ((y as f64 - pc.cy).powi(2))).sqrt();
                let f = sigmoid(config.alpha * (pc.r - d));
                let v = pc.q * f;
                let cell = &mut mask[(x as usize, y as usize)];
                if v > *cell {
                    *cell = v;
                    argmax[(x as usize, y as usize)] = i as i32;
                }
            }
        }
    }
    Composite {
        mask,
        argmax,
        placed,
        config: *config,
    }
}

impl Composite {
    /// The compose configuration used.
    pub fn config(&self) -> &ComposeConfig {
        &self.config
    }

    /// Backward pass: chain `∂L/∂M̄` (from the lithography adjoint)
    /// through Eq. 12–14 into the flat `4n` parameter gradient
    /// `[∂x₀, ∂y₀, ∂r₀, ∂q₀, ∂x₁, …]`.
    ///
    /// Gradients aggregate only over each circle's window `U` **and**
    /// only at pixels the circle wins (the argmax routing of Eq. 12).
    ///
    /// # Panics
    ///
    /// Panics if `grad_mask` does not match the grid size.
    pub fn backward(&self, grad_mask: &Grid2D<f64>) -> Vec<f64> {
        let n = self.config.size;
        assert!(
            grad_mask.width() == n && grad_mask.height() == n,
            "gradient shape mismatch"
        );
        let alpha = self.config.alpha;
        let mut grads = vec![0.0f64; self.placed.len() * 4];
        for (i, pc) in self.placed.iter().enumerate() {
            let half = pc.r.ceil() as i32 + self.config.window_margin;
            let x0 = (pc.cx.round() as i32 - half).max(0);
            let x1 = (pc.cx.round() as i32 + half).min(n as i32 - 1);
            let y0 = (pc.cy.round() as i32 - half).max(0);
            let y1 = (pc.cy.round() as i32 + half).min(n as i32 - 1);
            let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    if self.argmax[(x as usize, y as usize)] != i as i32 {
                        continue;
                    }
                    let dx = x as f64 - pc.cx;
                    let dy = y as f64 - pc.cy;
                    let d = (dx * dx + dy * dy).sqrt();
                    let f = sigmoid(alpha * (pc.r - d));
                    let h = f * (1.0 - f);
                    let g = grad_mask[(x as usize, y as usize)];
                    if d > 1e-9 {
                        gx += g * alpha * pc.q * h * (dx / d);
                        gy += g * alpha * pc.q * h * (dy / d);
                    }
                    gr += g * alpha * pc.q * h;
                    gq += g * f;
                }
            }
            grads[4 * i] = gx * pc.gate_x;
            grads[4 * i + 1] = gy * pc.gate_y;
            grads[4 * i + 2] = gr * pc.gate_r;
            grads[4 * i + 3] = gq;
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::CircleParams;

    fn single(x: f64, y: f64, r: f64, q: f64) -> SparseCircles {
        SparseCircles {
            circles: vec![CircleParams { x, y, r, q }],
        }
    }

    fn cfg(n: usize) -> ComposeConfig {
        ComposeConfig::new(n, 2, 12)
    }

    #[test]
    fn single_circle_window_shape() {
        let c = compose(&single(16.0, 16.0, 6.0, 1.0), &cfg(32));
        assert!(c.mask[(16, 16)] > 0.99);
        assert!(c.mask[(22, 16)] >= 0.45 && c.mask[(22, 16)] <= 0.55); // on the rim
        assert!(c.mask[(28, 16)] < 1e-6);
        assert_eq!(c.argmax[(16, 16)], 0);
        assert_eq!(c.argmax[(0, 0)], -1);
    }

    #[test]
    fn activation_scales_the_window() {
        let c = compose(&single(16.0, 16.0, 6.0, 0.4), &cfg(32));
        assert!((c.mask[(16, 16)] - 0.4).abs() < 0.01);
    }

    #[test]
    fn overlapping_circles_take_the_max() {
        let circles = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 14.0,
                    y: 16.0,
                    r: 6.0,
                    q: 1.0,
                },
                CircleParams {
                    x: 20.0,
                    y: 16.0,
                    r: 6.0,
                    q: 0.6,
                },
            ],
        };
        let c = compose(&circles, &cfg(32));
        // Deep inside circle 0 only.
        assert_eq!(c.argmax[(10, 16)], 0);
        // Deep inside circle 1 only — weaker q wins where circle 0's
        // window has fallen off.
        assert_eq!(c.argmax[(25, 16)], 1);
        // In the overlap, the stronger activation wins.
        assert_eq!(c.argmax[(17, 16)], 0);
    }

    #[test]
    fn negative_activation_never_claims_pixels() {
        let c = compose(&single(16.0, 16.0, 6.0, -0.5), &cfg(32));
        assert!(c.mask.as_slice().iter().all(|&v| v == 0.0));
        assert!(c.argmax.as_slice().iter().all(|&v| v == -1));
    }

    #[test]
    fn quantization_rounds_centers() {
        let a = compose(&single(16.4, 16.0, 6.3, 1.0), &cfg(32));
        let b = compose(&single(16.0, 16.0, 6.0, 1.0), &cfg(32));
        assert_eq!(a.mask, b.mask);
    }

    #[test]
    fn ste_gates_block_out_of_range_gradients() {
        // Radius pushed past r_max: clipped forward, gated backward.
        let c = compose(&single(16.0, 16.0, 99.0, 1.0), &cfg(32));
        let ones = Grid2D::new(32, 32, 1.0);
        let grads = c.backward(&ones);
        assert_eq!(grads[2], 0.0, "radius gradient must be gated off");
        assert!(grads[3] > 0.0, "q gradient still flows");
    }

    #[test]
    fn backward_matches_finite_differences_continuous() {
        // Validate Eq. 12–14 against finite differences of the
        // continuous (unquantized) composition with a fixed random-ish
        // pixel weighting: J = Σ w · M̄.
        let n = 32;
        let mut config = cfg(n);
        config.quantize = false;
        let weights: Vec<f64> = (0..n * n)
            .map(|i| ((i as f64 * 0.61803).sin() * 0.5 + 0.5) * 0.1)
            .collect();
        let w_grid = Grid2D::from_vec(n, n, weights);
        let j = |circles: &SparseCircles| -> f64 {
            let c = compose(circles, &config);
            c.mask
                .as_slice()
                .iter()
                .zip(w_grid.as_slice())
                .map(|(&m, &w)| m * w)
                .sum()
        };
        let base = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 12.3,
                    y: 15.1,
                    r: 5.2,
                    q: 0.9,
                },
                CircleParams {
                    x: 20.7,
                    y: 18.4,
                    r: 4.1,
                    q: 0.7,
                },
            ],
        };
        let composite = compose(&base, &config);
        let analytic = composite.backward(&w_grid);
        let eps = 1e-6;
        for p in 0..8 {
            let mut plus = base.clone();
            let mut flat = plus.to_flat();
            flat[p] += eps;
            plus.set_from_flat(&flat);
            let mut minus = base.clone();
            let mut flat = minus.to_flat();
            flat[p] -= eps;
            minus.set_from_flat(&flat);
            let fd = (j(&plus) - j(&minus)) / (2.0 * eps);
            assert!(
                (fd - analytic[p]).abs() < 1e-4 * fd.abs().max(analytic[p].abs()).max(1.0),
                "param {p}: fd={fd} analytic={}",
                analytic[p]
            );
        }
    }

    #[test]
    fn gradient_pushes_circle_toward_bright_pixels() {
        // Loss gradient negative on the right rim (wants more mask
        // there): ∂L/∂x must be negative so descending x += -grad moves
        // the circle right (paper Figure 5(a)).
        let n = 32;
        let circles = single(16.0, 16.0, 5.0, 1.0);
        let c = compose(&circles, &cfg(n));
        let mut grad = Grid2D::new(n, n, 0.0);
        for y in 12..21 {
            grad[(21, y)] = -1.0; // right rim pixels want to be brighter
        }
        let grads = c.backward(&grad);
        assert!(
            grads[0] < 0.0,
            "x gradient should point left (descend → right)"
        );
        assert!(grads[1].abs() < grads[0].abs() * 0.2, "y roughly balanced");
    }

    #[test]
    fn outside_pixel_gradients_grow_the_radius() {
        // Paper Figure 5(b): bright demand just outside the rim makes
        // ∂L/∂r negative (descent grows the circle).
        let n = 32;
        let circles = single(16.0, 16.0, 5.0, 1.0);
        let c = compose(&circles, &cfg(n));
        let mut grad = Grid2D::new(n, n, 0.0);
        for y in 10..23 {
            for x in 10..23 {
                let d = (((x - 16) * (x - 16) + (y - 16) * (y - 16)) as f64).sqrt();
                if d > 5.0 && d < 8.0 {
                    grad[(x as usize, y as usize)] = -1.0;
                }
            }
        }
        let grads = c.backward(&grad);
        assert!(
            grads[2] < 0.0,
            "radius gradient should be negative, got {}",
            grads[2]
        );
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn backward_checks_shape() {
        let c = compose(&single(16.0, 16.0, 5.0, 1.0), &cfg(32));
        let wrong = Grid2D::new(8, 8, 0.0);
        let _ = c.backward(&wrong);
    }
}
