//! The differentiable circle-to-pixel transformation (paper Eq. 10–14),
//! implemented as a **tile-bucketed, parallel, allocation-free engine**.
//!
//! Forward: every circle contributes a *circular window*
//! `f(x,y) = σ(α(r′ − ‖(x,y) − (x′,y′)‖))` (Eq. 10) and the dense mask is
//! the per-pixel maximum of the activated windows,
//! `M̄(x,y) = maxᵢ qᵢ fᵢ(x,y)` (Eq. 11). The winning circle index is
//! recorded per pixel so the backward pass can route gradients only
//! through the argmax, exactly as Eq. 12–14 prescribe.
//!
//! Backward: given `∂L/∂M̄`, accumulate per-circle gradients over the
//! window `U` — a square marginally larger than the circle's diameter
//! (Eq. 16 and the paper's memory/compute rationale):
//!
//! ```text
//! ∂M̄/∂xᵢ = α qᵢ h (x − xᵢ′)/d · 𝟙[0,W](xᵢ)     (h = f(1−f), d = distance)
//! ∂M̄/∂rᵢ = α qᵢ h · 𝟙[Rmin,Rmax](rᵢ)
//! ∂M̄/∂qᵢ = f
//! ```
//!
//! # Engine
//!
//! Work scales with **active shot area**, not grid area:
//!
//! * Placed circles are binned into fixed [`TILE`]`×`[`TILE`] buckets by
//!   their window `U`. Tiles no circle touches are skipped outright —
//!   they are neither cleared nor rendered (a per-tile dirty flag clears
//!   tiles that *were* covered on the previous use of a workspace).
//! * The **active tiles** (non-empty bucket now, or dirty from the
//!   previous render) form a worklist that workers claim dynamically
//!   (`par_index_claim` on the persistent pool), so sparse circle sets
//!   never pay for empty bands and clustered sets self-balance. Tiles
//!   are disjoint pixel sets, so the claimed writes (through a
//!   [`DisjointSliceMut`] row-segment view) are race-free, and within a
//!   bucket circles keep their index order, so per-pixel max updates
//!   replay the serial sequence exactly: the result is **bit-identical**
//!   to the retained serial reference ([`compose_serial`]) for every
//!   worker count.
//! * The per-pixel distance rows are computed by the AVX2 kernel in
//!   [`crate::simd`] (bit-exact, scalar fallback elsewhere), and the
//!   sigmoid skips its `exp` for provably saturated interior pixels.
//! * Circles with activation `q ≤ q_floor` are skipped entirely. The
//!   default floor of `0.0` is *exact*: a non-positive activation can
//!   never win a pixel (the max starts at the 0 background) and therefore
//!   never receives lithography gradient, so work shrinks for free as the
//!   Lasso regularizer (Eq. 17) drives activations negative.
//! * The backward pass is **fused with the forward routing**: one
//!   pixel-major sweep over the content tiles reuses the argmax winners,
//!   accumulating per-band partial gradients that a deterministic
//!   ascending-band reduction merges into the flat gradient vector.
//!   Bands scan row-major (y, then ascending tiles, then x), which visits
//!   each circle's winning pixels in exactly the order the band-blocked
//!   serial reference ([`Composite::backward_serial`]) accumulates them,
//!   so the parallel pass is bit-identical to it at any worker count.
//!
//! [`ComposeWorkspace`] owns every buffer (mask, argmax, placed circles,
//! tile buckets, band partials, parameter gradients) so the CircleOpt
//! inner loop is allocation-free after the first iteration.

use crate::repr::{CircleParams, SparseCircles};
use crate::simd::{fill_dist_row, sigmoid_sat, SIGMOID_SAT};
use crate::ste::ste;
use cfaopc_fft::parallel::{par_index_claim, DisjointSliceMut};
use cfaopc_grid::Grid2D;
use cfaopc_litho::sigmoid;

/// Edge length, in pixels, of the square tiles the composition engine
/// buckets circles into. 32² pixels keeps a tile's mask and argmax rows
/// within a few cache lines while giving the dynamic scheduler enough
/// bands to balance (a 1024² grid has 32 bands).
pub const TILE: usize = 32;

/// Parameters of the circle-to-pixel transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposeConfig {
    /// Window steepness `α` (paper §5 sets 8).
    pub alpha: f64,
    /// Halfwidth of the gradient window `U` beyond the radius, pixels.
    pub window_margin: i32,
    /// Grid width (= height) in pixels; also the STE clip bound for
    /// centers.
    pub size: usize,
    /// Minimum radius (STE clip bound), pixels.
    pub r_min: i32,
    /// Maximum radius (STE clip bound), pixels.
    pub r_max: i32,
    /// Quantize centers/radii through the STE (production behaviour).
    /// `false` keeps them continuous — used by the finite-difference
    /// tests to validate Eq. 12–14 without the rounding staircase.
    pub quantize: bool,
    /// Apply the STE indicator gates of Eq. 9 (block gradients outside
    /// the clip range). Disabling this is the `ablation_ste` study:
    /// parameters then drift past the writer's limits.
    pub clip_gates: bool,
    /// Activation floor: circles with `q ≤ q_floor` are skipped by both
    /// passes of the hard-max engine. `0.0` (the default) is exact —
    /// non-positive activations never claim a pixel and never receive
    /// lithography gradient; raising the floor trades exactness for
    /// speed as Lasso pruning (Eq. 17) pushes activations negative. The
    /// softmax composition ignores the floor (every circle contributes
    /// to its normalizer).
    pub q_floor: f64,
}

impl ComposeConfig {
    /// Standard configuration for a `size × size` grid.
    pub fn new(size: usize, r_min: i32, r_max: i32) -> Self {
        ComposeConfig {
            alpha: 8.0,
            window_margin: 3,
            size,
            r_min,
            r_max,
            quantize: true,
            clip_gates: true,
            q_floor: 0.0,
        }
    }
}

/// One circle after (optional) STE quantization, with backward gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PlacedCircle {
    pub(crate) cx: f64,
    pub(crate) cy: f64,
    pub(crate) r: f64,
    pub(crate) q: f64,
    pub(crate) gate_x: f64,
    pub(crate) gate_y: f64,
    pub(crate) gate_r: f64,
}

impl PlacedCircle {
    fn place(c: &CircleParams, config: &ComposeConfig) -> Self {
        if config.quantize {
            let n = config.size;
            let sx = ste(c.x, 0.0, (n - 1) as f64);
            let sy = ste(c.y, 0.0, (n - 1) as f64);
            let sr = ste(c.r, config.r_min as f64, config.r_max as f64);
            let (gate_x, gate_y, gate_r) = if config.clip_gates {
                (sx.gate, sy.gate, sr.gate)
            } else {
                (1.0, 1.0, 1.0)
            };
            PlacedCircle {
                cx: sx.value as f64,
                cy: sy.value as f64,
                r: sr.value as f64,
                q: c.q,
                gate_x,
                gate_y,
                gate_r,
            }
        } else {
            PlacedCircle {
                cx: c.x,
                cy: c.y,
                r: c.r,
                q: c.q,
                gate_x: 1.0,
                gate_y: 1.0,
                gate_r: 1.0,
            }
        }
    }

    /// The circle's clipped window `U` as inclusive pixel bounds
    /// `(x0, x1, y0, y1)`, or `None` when the window misses the grid
    /// entirely. The explicit rejection matters for unquantized circles
    /// pushed far off-grid (`cx.round() + half < 0`): the old code leaned
    /// on `max`/`min` producing an inverted empty range, which tile
    /// binning cannot tolerate.
    pub(crate) fn window(&self, n: usize, margin: i32) -> Option<(i32, i32, i32, i32)> {
        let half = self.r.ceil() as i32 + margin;
        let cx = self.cx.round() as i32;
        let cy = self.cy.round() as i32;
        let (x0, x1) = (cx - half, cx + half);
        let (y0, y1) = (cy - half, cy + half);
        if half < 0 || x1 < 0 || y1 < 0 || x0 >= n as i32 || y0 >= n as i32 {
            return None;
        }
        Some((
            x0.max(0),
            x1.min(n as i32 - 1),
            y0.max(0),
            y1.min(n as i32 - 1),
        ))
    }
}

/// Quantizes every circle (honouring `config.quantize`/`clip_gates`) into
/// `out`, reusing its allocation.
pub(crate) fn place_circles(
    circles: &SparseCircles,
    config: &ComposeConfig,
    out: &mut Vec<PlacedCircle>,
) {
    out.clear();
    out.extend(
        circles
            .circles
            .iter()
            .map(|c| PlacedCircle::place(c, config)),
    );
}

/// Tile buckets: which circles touch which [`TILE`]`×`[`TILE`] tile, plus
/// a dirty flag per tile so a reused workspace only clears tiles that
/// held content on the previous render.
#[derive(Debug, Default)]
pub(crate) struct TileGrid {
    size: usize,
    tiles_x: usize,
    buckets: Vec<Vec<u32>>,
    dirty: Vec<bool>,
    /// Worklist rebuilt by [`TileGrid::bin`]: tiles whose bucket is
    /// non-empty *or* whose dirty flag is set — exactly the tiles the
    /// renderer must touch (clear and/or draw).
    active: Vec<u32>,
}

impl TileGrid {
    pub(crate) fn new() -> Self {
        TileGrid::default()
    }

    fn reset(&mut self, n: usize) {
        if self.size != n {
            let tx = n.div_ceil(TILE);
            self.size = n;
            self.tiles_x = tx;
            self.buckets.clear();
            self.buckets.resize_with(tx * tx, Vec::new);
            // Every tile of the new geometry starts *dirty*: a workspace
            // alternating between sizes (n₁ → n₂ → n₁) can still hold
            // pixels from the previous same-sized render, and the flags
            // that tracked them were discarded on the first resize.
            // Forcing one full clear round makes correctness independent
            // of whether the owning workspace also reallocates its
            // grids (it does, but nothing should lean on that).
            self.dirty.clear();
            self.dirty.resize(tx * tx, true);
        }
    }

    /// Bins circles into tile buckets by their window `U`, preserving
    /// circle index order within each bucket (which is what keeps tiled
    /// rendering bit-identical to the serial reference). Circles with
    /// `q ≤ q_floor` (when given) or an off-grid window are dropped.
    pub(crate) fn bin(
        &mut self,
        placed: &[PlacedCircle],
        n: usize,
        margin: i32,
        q_floor: Option<f64>,
    ) {
        self.reset(n);
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        let mut pruned = 0u64;
        for (i, pc) in placed.iter().enumerate() {
            if let Some(floor) = q_floor {
                if pc.q <= floor {
                    pruned += 1;
                    continue;
                }
            }
            let Some((x0, x1, y0, y1)) = pc.window(n, margin) else {
                continue;
            };
            let (tx0, tx1) = (x0 as usize / TILE, x1 as usize / TILE);
            let (ty0, ty1) = (y0 as usize / TILE, y1 as usize / TILE);
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    self.buckets[ty * self.tiles_x + tx].push(i as u32);
                }
            }
        }
        self.active.clear();
        for (t, bucket) in self.buckets.iter().enumerate() {
            if !bucket.is_empty() || self.dirty[t] {
                self.active.push(t as u32);
            }
        }
        cfaopc_trace::counters::CIRCLES_PRUNED.add(pruned);
    }

    /// The tiles the renderer must touch (content now, or stale content
    /// to clear), in row-major tile order.
    pub(crate) fn active(&self) -> &[u32] {
        &self.active
    }

    /// The circle indices binned into tile `t` (row-major tile order).
    pub(crate) fn bucket(&self, t: usize) -> &[u32] {
        &self.buckets[t]
    }

    /// Number of tiles along one grid edge after the last bin.
    pub(crate) fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Records which tiles now hold content, for the next render's
    /// skip-or-clear decision.
    pub(crate) fn commit_dirty(&mut self) {
        for (d, bucket) in self.dirty.iter_mut().zip(&self.buckets) {
            *d = !bucket.is_empty();
        }
    }
}

/// How many active tiles one scheduler claim hands a worker. Small
/// enough to balance clustered layouts, large enough that the atomic
/// claim cost is amortized over ~4 KiB of rendered pixels.
pub(crate) const RENDER_GRAIN: usize = 4;

/// Per-radius sigmoid/distance lookup tables for quantized renders.
///
/// With `quantize = true` every placed circle has an integer center and
/// radius, so a window pixel's squared center distance `dx² + dy²` is a
/// small exact integer (at most `2·(r_max + margin)²`) and the window
/// sigmoid depends only on the pair `(r, d²)`. Tabulating
/// `d = √d²` and `f = σ(α(r − d))` for every reachable pair replaces
/// the per-pixel sqrt + exp with two L1-resident loads. Each entry is
/// computed with the exact expression tree the serial reference
/// evaluates per pixel — same integer-valued inputs, same operations —
/// so lookups are bit-identical by construction, not by approximation.
#[derive(Debug, Default)]
pub(crate) struct SigmaTable {
    alpha: f64,
    r_min: i32,
    r_max: i32,
    margin: i32,
    /// `dtable[d²] = (d² as f64).sqrt()`.
    dtable: Vec<f64>,
    /// `ftable[(r − r_min)·(cap + 1) + d²] = σ(α·(r − dtable[d²]))`.
    ftable: Vec<f64>,
    /// Largest reachable `d²`: `2·(r_max + margin)²`.
    cap: usize,
}

impl SigmaTable {
    /// Rebuilds the tables when the governing config fields changed;
    /// no-op (and allocation-free) otherwise.
    pub(crate) fn ensure(&mut self, config: &ComposeConfig) {
        if self.alpha == config.alpha
            && self.r_min == config.r_min
            && self.r_max == config.r_max
            && self.margin == config.window_margin
            && !self.ftable.is_empty()
        {
            return;
        }
        self.alpha = config.alpha;
        self.r_min = config.r_min;
        self.r_max = config.r_max;
        self.margin = config.window_margin;
        let half = (config.r_max + config.window_margin).max(0) as usize;
        self.cap = 2 * half * half;
        self.dtable.clear();
        self.dtable
            .extend((0..=self.cap).map(|d2| (d2 as f64).sqrt()));
        let nr = (config.r_max - config.r_min).max(0) as usize + 1;
        self.ftable.clear();
        self.ftable.reserve(nr * (self.cap + 1));
        for ri in 0..nr {
            let r = (config.r_min + ri as i32) as f64;
            self.ftable
                .extend(self.dtable.iter().map(|&d| sigmoid(config.alpha * (r - d))));
        }
    }

    /// The `(f, d)` lookup rows for an integer-valued radius `r`. An
    /// out-of-range radius (impossible for STE-clipped circles) panics
    /// on the slice bound rather than reading a neighbouring radius row.
    fn rows(&self, r: f64) -> (&[f64], &[f64]) {
        let ri = (r as i64 - self.r_min as i64) as usize;
        let base = ri * (self.cap + 1);
        (&self.ftable[base..base + self.cap + 1], &self.dtable)
    }
}

/// Renders the hard-max composition over the active-tile worklist,
/// tiles claimed dynamically by the worker pool.
///
/// Every active tile is cleared and re-rendered from its bucket;
/// inactive tiles (untouched now *and* on the previous render) are never
/// visited. Tiles are disjoint pixel sets and each worklist index is
/// claimed exactly once per region, so the row-segment writes below are
/// race-free and the result is bit-identical to [`compose_serial`] at
/// any worker count.
///
/// Alongside mask and argmax, the render records each winning pixel's
/// sigmoid value and center distance into `fwin`/`dwin` — the exact
/// intermediates the backward pass would otherwise recompute (one sqrt
/// and one exp per winner). The caches carry no validity state of their
/// own: they are written exactly when argmax is, and the backward sweep
/// reads them only where `argmax ≥ 0`, so they never need clearing.
#[allow(clippy::too_many_arguments)] // internal: mask/argmax/fwin/dwin are one logical output set
fn render_max(
    placed: &[PlacedCircle],
    config: &ComposeConfig,
    tiles: &TileGrid,
    table: Option<&SigmaTable>,
    mask: &mut [f64],
    argmax: &mut [i32],
    fwin: &mut [f64],
    dwin: &mut [f64],
) {
    let n = config.size;
    let tiles_x = tiles.tiles_x;
    let active = tiles.active();
    let total_tiles = tiles_x * n.div_ceil(TILE);
    cfaopc_trace::counters::TILES_RENDERED.add(active.len() as u64);
    cfaopc_trace::counters::TILES_SKIPPED.add((total_tiles - active.len()) as u64);
    let alpha = config.alpha;
    let margin = config.window_margin;
    let started = std::time::Instant::now();
    let mask_sh = DisjointSliceMut::new(mask);
    let arg_sh = DisjointSliceMut::new(argmax);
    let fw_sh = DisjointSliceMut::new(fwin);
    let dw_sh = DisjointSliceMut::new(dwin);
    par_index_claim(active.len(), RENDER_GRAIN, |k| {
        let t = active[k] as usize;
        let (ty, tx) = (t / tiles_x, t % tiles_x);
        let c0 = tx * TILE;
        let c1 = (c0 + TILE).min(n);
        let t_y0 = ty * TILE;
        let t_y1 = (t_y0 + TILE).min(n);
        for y in t_y0..t_y1 {
            // SAFETY: tile `t` is claimed by exactly one worker per
            // region and tiles are disjoint pixel sets, so no other
            // live sub-slice overlaps this row segment.
            #[allow(unsafe_code)]
            let mrow = unsafe { mask_sh.slice_mut(y * n + c0, c1 - c0) };
            // SAFETY: as above — same tile, same disjoint row segment.
            #[allow(unsafe_code)]
            let arow = unsafe { arg_sh.slice_mut(y * n + c0, c1 - c0) };
            mrow.fill(0.0);
            arow.fill(-1);
        }
        let mut dist = [0.0f64; TILE];
        for &ci in tiles.bucket(t) {
            let pc = &placed[ci as usize];
            let (wx0, wx1, wy0, wy1) = pc
                .window(n, margin)
                .expect("binned circles have on-grid windows");
            let x0 = (wx0 as usize).max(c0);
            let x1 = (wx1 as usize + 1).min(c1);
            let y0 = (wy0 as usize).max(t_y0);
            let y1 = (wy1 as usize + 1).min(t_y1);
            if x0 >= x1 {
                continue;
            }
            let seg_len = x1 - x0;
            let lookup = table.map(|tb| tb.rows(pc.r));
            for y in y0..y1 {
                let dyv = y as f64 - pc.cy;
                // SAFETY: the segment lies inside tile `t`'s rows
                // (window intersected with the tile), claimed by this
                // worker alone; no other sub-slice is alive.
                #[allow(unsafe_code)]
                let mrow = unsafe { mask_sh.slice_mut(y * n + x0, seg_len) };
                // SAFETY: as above — same in-tile row segment.
                #[allow(unsafe_code)]
                let arow = unsafe { arg_sh.slice_mut(y * n + x0, seg_len) };
                // SAFETY: as above — same in-tile row segment.
                #[allow(unsafe_code)]
                let frow = unsafe { fw_sh.slice_mut(y * n + x0, seg_len) };
                // SAFETY: as above — same in-tile row segment.
                #[allow(unsafe_code)]
                let drow = unsafe { dw_sh.slice_mut(y * n + x0, seg_len) };
                if let Some((ft, dt)) = lookup {
                    // Quantized render: d² is a small exact integer, so
                    // the sigmoid and distance come from the lookup
                    // tables — no sqrt, no exp, bit-identical entries.
                    let dy2 = dyv * dyv;
                    for j in 0..seg_len {
                        // v = q·f ≤ q (f ≤ 1, rounding is monotone), so
                        // a circle whose activation does not exceed the
                        // running max can never win: skip the lookup.
                        if pc.q <= mrow[j] {
                            continue;
                        }
                        let dxv = (x0 + j) as f64 - pc.cx;
                        let idx = (dxv * dxv + dy2) as usize;
                        let f = ft[idx];
                        let v = pc.q * f;
                        if v > mrow[j] {
                            mrow[j] = v;
                            arow[j] = ci as i32;
                            frow[j] = f;
                            drow[j] = dt[idx];
                        }
                    }
                    continue;
                }
                let seg = &mut dist[..seg_len];
                fill_dist_row(seg, x0, pc.cx, dyv * dyv);
                for (j, &d) in seg.iter().enumerate() {
                    // Same early-skip as above: q ≤ running max can
                    // never produce a strictly greater v. The serial
                    // reference evaluates the sigmoid anyway and reaches
                    // the same (no-update) outcome.
                    if pc.q <= mrow[j] {
                        continue;
                    }
                    let f = sigmoid_sat(alpha * (pc.r - d));
                    let v = pc.q * f;
                    if v > mrow[j] {
                        mrow[j] = v;
                        arow[j] = ci as i32;
                        frow[j] = f;
                        drow[j] = d;
                    }
                }
            }
        }
    });
    cfaopc_trace::counters::COMPOSE_RENDER_NS.add(started.elapsed().as_nanos() as u64);
}

/// Fused backward pass shared by [`Composite::backward`] and
/// [`ComposeWorkspace::backward_into`]: a single pixel-major sweep that
/// reuses the forward argmax routing instead of re-scanning every
/// circle's window.
///
/// Bands (tile rows) are claimed dynamically; each band task scans its
/// rows left to right across content tiles and scatters each winning
/// pixel's contribution into that band's private partial-gradient block
/// (`4·n_circles` lanes). A deterministic ascending-band reduction then
/// merges the partials and applies the STE gates. Because the band scan
/// visits circle `i`'s winning pixels in (y, x) order — the same order
/// the band-blocked serial reference accumulates them — and the merge
/// tree is fixed, the result is bit-identical to
/// [`Composite::backward_serial`] at any worker count.
///
/// `content`: when the caller owns the tile buckets, tiles with empty
/// buckets are skipped (they cannot hold winners); `None` scans every
/// tile, which is equivalent but slower.
///
/// `winners`: the forward sweep's per-pixel `(f, d)` caches when the
/// caller kept them ([`ComposeWorkspace`] does). A cached winner costs
/// no sqrt and no exp — saturated pixels (`f = 1.0` exactly, so
/// `h = f(1−f) = 0`) collapse to `∂q += g` outright, and ring pixels
/// reuse the recorded sigmoid and distance bit-for-bit. Without caches
/// the sweep recomputes both, with a conservative interior shortcut:
/// once `d² ≤ (r − SAT/α − 1)²` the sigmoid is provably saturated. The
/// serial reference adds the saturated zero terms explicitly; skipping
/// them can only flip a gradient's zero sign (`-0.0` vs `0.0`), which
/// compares equal.
#[allow(clippy::too_many_arguments)] // internal: the argmax/content/winners trio is one routing input
fn backward_fused_into(
    placed: &[PlacedCircle],
    config: &ComposeConfig,
    argmax: &Grid2D<i32>,
    grad_mask: &Grid2D<f64>,
    content: Option<&TileGrid>,
    winners: Option<(&[f64], &[f64])>,
    partials: &mut Vec<f64>,
    grads: &mut [f64],
) {
    let n = config.size;
    assert!(
        grad_mask.width() == n && grad_mask.height() == n,
        "gradient shape mismatch"
    );
    debug_assert_eq!(grads.len(), placed.len() * 4);
    if placed.is_empty() {
        return;
    }
    let bands = n.div_ceil(TILE);
    let tiles_x = n.div_ceil(TILE);
    let stride = placed.len() * 4;
    partials.clear();
    partials.resize(bands * stride, 0.0);
    let alpha = config.alpha;
    let am = argmax.as_slice();
    let gm = grad_mask.as_slice();
    let started = std::time::Instant::now();
    let part_sh = DisjointSliceMut::new(partials.as_mut_slice());
    par_index_claim(bands, 1, |b| {
        // SAFETY: band `b` is claimed by exactly one worker per region
        // and bands own disjoint `stride`-sized blocks of the partials
        // buffer.
        #[allow(unsafe_code)]
        let part = unsafe { part_sh.slice_mut(b * stride, stride) };
        let y0 = b * TILE;
        let y1 = (y0 + TILE).min(n);
        for y in y0..y1 {
            let row = y * n;
            for tx in 0..tiles_x {
                if let Some(tiles) = content {
                    if tiles.bucket(b * tiles_x + tx).is_empty() {
                        continue; // no circle rendered here: no winners
                    }
                }
                let x0 = tx * TILE;
                let x1 = (x0 + TILE).min(n);
                for x in x0..x1 {
                    let w = am[row + x];
                    if w < 0 {
                        continue;
                    }
                    let pc = &placed[w as usize];
                    let g = gm[row + x];
                    let slot = 4 * w as usize;
                    let (f, d) = if let Some((fc, dc)) = winners {
                        let f = fc[row + x];
                        if f == 1.0 {
                            // Saturated winner: h = f(1−f) = 0 exactly.
                            part[slot + 3] += g;
                            continue;
                        }
                        (f, dc[row + x])
                    } else {
                        let dx = x as f64 - pc.cx;
                        let dy = y as f64 - pc.cy;
                        let d2 = dx * dx + dy * dy;
                        let r_in = pc.r - SIGMOID_SAT / alpha - 1.0;
                        if r_in > 0.0 && d2 <= r_in * r_in {
                            // Saturated interior: f = 1 exactly, h = 0.
                            part[slot + 3] += g;
                            continue;
                        }
                        let d = d2.sqrt();
                        (sigmoid_sat(alpha * (pc.r - d)), d)
                    };
                    let dx = x as f64 - pc.cx;
                    let dy = y as f64 - pc.cy;
                    let h = f * (1.0 - f);
                    if d > 1e-9 {
                        part[slot] += g * alpha * pc.q * h * (dx / d);
                        part[slot + 1] += g * alpha * pc.q * h * (dy / d);
                    }
                    part[slot + 2] += g * alpha * pc.q * h;
                    part[slot + 3] += g * f;
                }
            }
        }
    });
    cfaopc_trace::counters::BACKWARD_SCAN_NS.add(started.elapsed().as_nanos() as u64);

    // Ordered reduction: ascending bands, then the STE gates — the same
    // fixed merge tree the serial reference uses, at every worker count.
    let merge_started = std::time::Instant::now();
    for (i, pc) in placed.iter().enumerate() {
        let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
        for b in 0..bands {
            let base = b * stride + 4 * i;
            gx += partials[base];
            gy += partials[base + 1];
            gr += partials[base + 2];
            gq += partials[base + 3];
        }
        grads[4 * i] = gx * pc.gate_x;
        grads[4 * i + 1] = gy * pc.gate_y;
        grads[4 * i + 2] = gr * pc.gate_r;
        grads[4 * i + 3] = gq;
    }
    cfaopc_trace::counters::BACKWARD_MERGE_NS.add(merge_started.elapsed().as_nanos() as u64);
}

/// Reusable state for the tiled composition engine: mask, argmax, placed
/// circles, tile buckets and the parameter-gradient buffer all live here,
/// so the CircleOpt inner loop performs **zero steady-state heap
/// allocations** in the circle→pixel direction.
///
/// # Examples
///
/// ```
/// use cfaopc_core::{CircleParams, ComposeConfig, ComposeWorkspace, SparseCircles};
/// use cfaopc_grid::Grid2D;
///
/// let circles = SparseCircles {
///     circles: vec![CircleParams { x: 16.0, y: 16.0, r: 6.0, q: 1.0 }],
/// };
/// let config = ComposeConfig::new(32, 3, 19);
/// let mut ws = ComposeWorkspace::new();
/// ws.compose(&circles, &config);
/// assert!(ws.mask()[(16, 16)] > 0.99);
/// let grad = Grid2D::new(32, 32, 1.0);
/// let mut grads = Vec::new();
/// ws.backward_into(&grad, &mut grads);
/// assert_eq!(grads.len(), 4);
/// ```
#[derive(Debug)]
pub struct ComposeWorkspace {
    mask: Grid2D<f64>,
    argmax: Grid2D<i32>,
    placed: Vec<PlacedCircle>,
    tiles: TileGrid,
    partials: Vec<f64>,
    /// Winning pixels' sigmoid values, written by the render alongside
    /// argmax; read by the fused backward (valid wherever `argmax ≥ 0`).
    fwin: Vec<f64>,
    /// Winning pixels' center distances (same validity as `fwin`).
    dwin: Vec<f64>,
    /// Quantized-render sigmoid/distance lookup tables (rebuilt only
    /// when the governing config fields change).
    table: SigmaTable,
    config: Option<ComposeConfig>,
}

impl Default for ComposeWorkspace {
    fn default() -> Self {
        ComposeWorkspace::new()
    }
}

impl ComposeWorkspace {
    /// Creates an empty workspace; buffers are sized by the first
    /// [`ComposeWorkspace::compose`] call and reused afterwards.
    pub fn new() -> Self {
        ComposeWorkspace {
            mask: Grid2D::new(0, 0, 0.0),
            argmax: Grid2D::new(0, 0, -1),
            placed: Vec::new(),
            tiles: TileGrid::new(),
            partials: Vec::new(),
            fwin: Vec::new(),
            dwin: Vec::new(),
            table: SigmaTable::default(),
            config: None,
        }
    }

    /// Renders the dense mask and argmax map for `circles` into the
    /// workspace buffers (tile-parallel, skipping untouched tiles and
    /// circles at or below `config.q_floor`). Bit-identical to
    /// [`compose_serial`] at any worker count.
    pub fn compose(&mut self, circles: &SparseCircles, config: &ComposeConfig) {
        let n = config.size;
        if self.mask.width() != n || self.mask.height() != n {
            self.mask = Grid2D::new(n, n, 0.0);
            self.argmax = Grid2D::new(n, n, -1);
            self.fwin.clear();
            self.fwin.resize(n * n, 0.0);
            self.dwin.clear();
            self.dwin.resize(n * n, 0.0);
        }
        self.config = Some(*config);
        place_circles(circles, config, &mut self.placed);
        self.tiles
            .bin(&self.placed, n, config.window_margin, Some(config.q_floor));
        // Integer centers/radii (quantize = true) make the sigmoid a
        // finite function of (r, d²) — serve it from lookup tables.
        let table = if config.quantize {
            self.table.ensure(config);
            Some(&self.table)
        } else {
            None
        };
        render_max(
            &self.placed,
            config,
            &self.tiles,
            table,
            self.mask.as_mut_slice(),
            self.argmax.as_mut_slice(),
            &mut self.fwin,
            &mut self.dwin,
        );
        self.tiles.commit_dirty();
    }

    /// The dense mask `M̄` from the last [`ComposeWorkspace::compose`].
    pub fn mask(&self) -> &Grid2D<f64> {
        &self.mask
    }

    /// The argmax routing map from the last compose (`-1` = background).
    pub fn argmax(&self) -> &Grid2D<i32> {
        &self.argmax
    }

    /// Backward pass into a caller-owned buffer, resized to `4n` and
    /// fully overwritten (so a buffer reused across iterations never
    /// accumulates stale gradients).
    ///
    /// Runs the fused pixel-major sweep over the content tiles recorded
    /// by the last compose, reusing its argmax routing; the band-partial
    /// scratch buffer lives in the workspace (hence `&mut self`), so
    /// steady-state iterations stay allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if [`ComposeWorkspace::compose`] has not been called, or on
    /// a gradient shape mismatch.
    pub fn backward_into(&mut self, grad_mask: &Grid2D<f64>, grads: &mut Vec<f64>) {
        let config = self
            .config
            .as_ref()
            .expect("backward_into requires a prior compose");
        grads.clear();
        grads.resize(self.placed.len() * 4, 0.0);
        backward_fused_into(
            &self.placed,
            config,
            &self.argmax,
            grad_mask,
            Some(&self.tiles),
            Some((&self.fwin, &self.dwin)),
            &mut self.partials,
            grads,
        );
    }

    /// Consumes the workspace into an owned [`Composite`].
    ///
    /// # Panics
    ///
    /// Panics if [`ComposeWorkspace::compose`] has not been called.
    pub fn into_composite(self) -> Composite {
        Composite {
            config: self
                .config
                .expect("into_composite requires a prior compose"),
            mask: self.mask,
            argmax: self.argmax,
            placed: self.placed,
        }
    }
}

/// The dense mask, its argmax routing map, and everything needed to run
/// the backward pass.
#[derive(Debug, Clone)]
pub struct Composite {
    /// The dense mask `M̄` (Eq. 11); zero where no circle wins.
    pub mask: Grid2D<f64>,
    /// Winning circle per pixel; `-1` = background (no positive window).
    pub argmax: Grid2D<i32>,
    placed: Vec<PlacedCircle>,
    config: ComposeConfig,
}

/// Builds the dense mask from the sparse circular representation using
/// the tiled parallel engine (bit-identical to [`compose_serial`]).
///
/// Callers composing every iteration should prefer a reused
/// [`ComposeWorkspace`], which skips this function's per-call buffer
/// allocations.
///
/// # Examples
///
/// ```
/// use cfaopc_core::{compose, ComposeConfig, CircleParams, SparseCircles};
///
/// let circles = SparseCircles {
///     circles: vec![CircleParams { x: 16.0, y: 16.0, r: 6.0, q: 1.0 }],
/// };
/// let composite = compose(&circles, &ComposeConfig::new(32, 3, 19));
/// assert!(composite.mask[(16, 16)] > 0.99); // deep inside the circle
/// assert!(composite.mask[(0, 0)] < 1e-6);   // background
/// ```
pub fn compose(circles: &SparseCircles, config: &ComposeConfig) -> Composite {
    let mut ws = ComposeWorkspace::new();
    ws.compose(circles, config);
    ws.into_composite()
}

/// The retained serial reference implementation of [`compose`]: one flat
/// pass over every circle's window, no tiling, no parallelism. Kept (and
/// exercised by property tests) as the ground truth the tiled engine must
/// match bit-for-bit; also the baseline the `circleopt` benchmark times
/// the engine against.
pub fn compose_serial(circles: &SparseCircles, config: &ComposeConfig) -> Composite {
    let n = config.size;
    let mut mask = Grid2D::new(n, n, 0.0f64);
    let mut argmax = Grid2D::new(n, n, -1i32);
    let mut placed = Vec::new();
    place_circles(circles, config, &mut placed);

    for (i, pc) in placed.iter().enumerate() {
        if pc.q <= config.q_floor {
            continue;
        }
        let Some((x0, x1, y0, y1)) = pc.window(n, config.window_margin) else {
            continue;
        };
        for y in y0..=y1 {
            for x in x0..=x1 {
                let d = (((x as f64 - pc.cx).powi(2)) + ((y as f64 - pc.cy).powi(2))).sqrt();
                let f = sigmoid(config.alpha * (pc.r - d));
                let v = pc.q * f;
                let cell = &mut mask[(x as usize, y as usize)];
                if v > *cell {
                    *cell = v;
                    argmax[(x as usize, y as usize)] = i as i32;
                }
            }
        }
    }
    Composite {
        mask,
        argmax,
        placed,
        config: *config,
    }
}

impl Composite {
    /// The compose configuration used.
    pub fn config(&self) -> &ComposeConfig {
        &self.config
    }

    /// Backward pass: chain `∂L/∂M̄` (from the lithography adjoint)
    /// through Eq. 12–14 into the flat `4n` parameter gradient
    /// `[∂x₀, ∂y₀, ∂r₀, ∂q₀, ∂x₁, …]`.
    ///
    /// Gradients aggregate only at pixels each circle wins (the argmax
    /// routing of Eq. 12): a fused pixel-major sweep scatters winning
    /// pixels into per-band partials, bands claimed in parallel, merged
    /// by a deterministic ascending-band reduction. The result is
    /// bit-identical to [`Composite::backward_serial`].
    ///
    /// Callers iterating should prefer [`ComposeWorkspace::backward_into`],
    /// which reuses the band-partial scratch buffer (and skips tiles no
    /// circle touches).
    ///
    /// # Panics
    ///
    /// Panics if `grad_mask` does not match the grid size.
    pub fn backward(&self, grad_mask: &Grid2D<f64>) -> Vec<f64> {
        let mut grads = vec![0.0f64; self.placed.len() * 4];
        let mut partials = Vec::new();
        backward_fused_into(
            &self.placed,
            &self.config,
            &self.argmax,
            grad_mask,
            None,
            None,
            &mut partials,
            &mut grads,
        );
        grads
    }

    /// The retained serial reference for [`Composite::backward`] —
    /// ground truth for the property tests and the benchmark baseline.
    ///
    /// Accumulation is **band-blocked**: each circle's windowed sums are
    /// collected per tile row (ascending `y`, then `x`, within each
    /// band) and the per-band partials are reduced in ascending band
    /// order before the STE gates apply. This fixes the floating-point
    /// summation tree that the parallel fused pass reproduces exactly;
    /// the naive whole-window sum would associate multi-band windows
    /// differently and drift by rounding.
    ///
    /// # Panics
    ///
    /// Panics if `grad_mask` does not match the grid size.
    pub fn backward_serial(&self, grad_mask: &Grid2D<f64>) -> Vec<f64> {
        let n = self.config.size;
        assert!(
            grad_mask.width() == n && grad_mask.height() == n,
            "gradient shape mismatch"
        );
        let alpha = self.config.alpha;
        let bands = n.div_ceil(TILE);
        let stride = self.placed.len() * 4;
        let mut partials = vec![0.0f64; bands * stride];
        for b in 0..bands {
            let band_y0 = b * TILE;
            let band_y1 = (band_y0 + TILE).min(n);
            let part = &mut partials[b * stride..(b + 1) * stride];
            for (i, pc) in self.placed.iter().enumerate() {
                if pc.q <= self.config.q_floor {
                    continue;
                }
                let Some((x0, x1, y0, y1)) = pc.window(n, self.config.window_margin) else {
                    continue;
                };
                let row0 = (y0 as usize).max(band_y0);
                let row1 = (y1 as usize + 1).min(band_y1);
                for y in row0..row1 {
                    for x in x0..=x1 {
                        if self.argmax[(x as usize, y)] != i as i32 {
                            continue;
                        }
                        let dx = x as f64 - pc.cx;
                        let dy = y as f64 - pc.cy;
                        let d = (dx * dx + dy * dy).sqrt();
                        let f = sigmoid(alpha * (pc.r - d));
                        let h = f * (1.0 - f);
                        let g = grad_mask[(x as usize, y)];
                        if d > 1e-9 {
                            part[4 * i] += g * alpha * pc.q * h * (dx / d);
                            part[4 * i + 1] += g * alpha * pc.q * h * (dy / d);
                        }
                        part[4 * i + 2] += g * alpha * pc.q * h;
                        part[4 * i + 3] += g * f;
                    }
                }
            }
        }
        let mut grads = vec![0.0f64; stride];
        for (i, pc) in self.placed.iter().enumerate() {
            let (mut gx, mut gy, mut gr, mut gq) = (0.0, 0.0, 0.0, 0.0);
            for b in 0..bands {
                let base = b * stride + 4 * i;
                gx += partials[base];
                gy += partials[base + 1];
                gr += partials[base + 2];
                gq += partials[base + 3];
            }
            grads[4 * i] = gx * pc.gate_x;
            grads[4 * i + 1] = gy * pc.gate_y;
            grads[4 * i + 2] = gr * pc.gate_r;
            grads[4 * i + 3] = gq;
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::CircleParams;

    fn single(x: f64, y: f64, r: f64, q: f64) -> SparseCircles {
        SparseCircles {
            circles: vec![CircleParams { x, y, r, q }],
        }
    }

    fn cfg(n: usize) -> ComposeConfig {
        ComposeConfig::new(n, 2, 12)
    }

    #[test]
    fn single_circle_window_shape() {
        let c = compose(&single(16.0, 16.0, 6.0, 1.0), &cfg(32));
        assert!(c.mask[(16, 16)] > 0.99);
        assert!(c.mask[(22, 16)] >= 0.45 && c.mask[(22, 16)] <= 0.55); // on the rim
        assert!(c.mask[(28, 16)] < 1e-6);
        assert_eq!(c.argmax[(16, 16)], 0);
        assert_eq!(c.argmax[(0, 0)], -1);
    }

    #[test]
    fn activation_scales_the_window() {
        let c = compose(&single(16.0, 16.0, 6.0, 0.4), &cfg(32));
        assert!((c.mask[(16, 16)] - 0.4).abs() < 0.01);
    }

    #[test]
    fn overlapping_circles_take_the_max() {
        let circles = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 14.0,
                    y: 16.0,
                    r: 6.0,
                    q: 1.0,
                },
                CircleParams {
                    x: 20.0,
                    y: 16.0,
                    r: 6.0,
                    q: 0.6,
                },
            ],
        };
        let c = compose(&circles, &cfg(32));
        // Deep inside circle 0 only.
        assert_eq!(c.argmax[(10, 16)], 0);
        // Deep inside circle 1 only — weaker q wins where circle 0's
        // window has fallen off.
        assert_eq!(c.argmax[(25, 16)], 1);
        // In the overlap, the stronger activation wins.
        assert_eq!(c.argmax[(17, 16)], 0);
    }

    #[test]
    fn negative_activation_never_claims_pixels() {
        let c = compose(&single(16.0, 16.0, 6.0, -0.5), &cfg(32));
        assert!(c.mask.as_slice().iter().all(|&v| v == 0.0));
        assert!(c.argmax.as_slice().iter().all(|&v| v == -1));
    }

    #[test]
    fn quantization_rounds_centers() {
        let a = compose(&single(16.4, 16.0, 6.3, 1.0), &cfg(32));
        let b = compose(&single(16.0, 16.0, 6.0, 1.0), &cfg(32));
        assert_eq!(a.mask, b.mask);
    }

    #[test]
    fn far_off_grid_circle_is_skipped_cleanly() {
        // Regression: with `quantize: false` a center far off-grid
        // (cx.round() + half < 0) used to produce an inverted clamped
        // range that only worked by accident; the window must be
        // rejected explicitly. Both passes stay empty/zero.
        let mut config = cfg(32);
        config.quantize = false;
        for &(x, y) in &[
            (-500.0, 16.0),
            (16.0, -500.0),
            (900.0, 16.0),
            (-40.0, -40.0),
        ] {
            let circles = single(x, y, 5.0, 1.0);
            let c = compose(&circles, &config);
            assert!(c.mask.as_slice().iter().all(|&v| v == 0.0), "({x},{y})");
            assert!(c.argmax.as_slice().iter().all(|&v| v == -1));
            let grads = c.backward(&Grid2D::new(32, 32, 1.0));
            assert!(grads.iter().all(|&g| g == 0.0));
            // And the serial reference agrees bit-for-bit.
            let s = compose_serial(&circles, &config);
            assert_eq!(s.mask, c.mask);
            assert_eq!(s.argmax, c.argmax);
        }
    }

    #[test]
    fn q_floor_prunes_low_activation_circles() {
        let circles = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 10.0,
                    y: 10.0,
                    r: 5.0,
                    q: 0.05,
                },
                CircleParams {
                    x: 22.0,
                    y: 22.0,
                    r: 5.0,
                    q: 1.0,
                },
            ],
        };
        let mut config = cfg(32);
        config.q_floor = 0.1;
        let c = compose(&circles, &config);
        assert!(c.mask[(10, 10)] == 0.0, "pruned circle must not render");
        assert!(c.mask[(22, 22)] > 0.9);
        // Serial reference implements the same floor semantics.
        let s = compose_serial(&circles, &config);
        assert_eq!(s.mask, c.mask);
        let grads = c.backward(&Grid2D::new(32, 32, 1.0));
        assert_eq!(&grads[..4], &[0.0; 4], "pruned circle gets no gradient");
    }

    #[test]
    fn workspace_reuse_matches_fresh_compose_after_shrink() {
        // A workspace that rendered a big mask must fully clear stale
        // tiles when the next circle set covers less area.
        let big = SparseCircles {
            circles: (0..6)
                .map(|i| CircleParams {
                    x: 5.0 + 4.0 * i as f64,
                    y: 5.0 + 4.0 * i as f64,
                    r: 6.0,
                    q: 1.0,
                })
                .collect(),
        };
        let small = single(8.0, 8.0, 4.0, 0.7);
        let config = cfg(32);
        let mut ws = ComposeWorkspace::new();
        ws.compose(&big, &config);
        ws.compose(&small, &config);
        let fresh = compose(&small, &config);
        assert_eq!(ws.mask(), &fresh.mask);
        assert_eq!(ws.argmax(), &fresh.argmax);
    }

    #[test]
    fn workspace_backward_matches_composite_backward() {
        let circles = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 12.0,
                    y: 15.0,
                    r: 5.0,
                    q: 0.9,
                },
                CircleParams {
                    x: 20.0,
                    y: 18.0,
                    r: 4.0,
                    q: -0.2,
                },
            ],
        };
        let config = cfg(32);
        let grad = Grid2D::new(32, 32, 0.3);
        let mut ws = ComposeWorkspace::new();
        ws.compose(&circles, &config);
        let mut grads = vec![99.0; 2]; // wrong size and stale values
        ws.backward_into(&grad, &mut grads);
        let reference = compose(&circles, &config).backward(&grad);
        assert_eq!(grads, reference);
    }

    #[test]
    fn ste_gates_block_out_of_range_gradients() {
        // Radius pushed past r_max: clipped forward, gated backward.
        let c = compose(&single(16.0, 16.0, 99.0, 1.0), &cfg(32));
        let ones = Grid2D::new(32, 32, 1.0);
        let grads = c.backward(&ones);
        assert_eq!(grads[2], 0.0, "radius gradient must be gated off");
        assert!(grads[3] > 0.0, "q gradient still flows");
    }

    #[test]
    fn backward_matches_finite_differences_continuous() {
        // Validate Eq. 12–14 against finite differences of the
        // continuous (unquantized) composition with a fixed random-ish
        // pixel weighting: J = Σ w · M̄.
        let n = 32;
        let mut config = cfg(n);
        config.quantize = false;
        let weights: Vec<f64> = (0..n * n)
            .map(|i| ((i as f64 * 0.61803).sin() * 0.5 + 0.5) * 0.1)
            .collect();
        let w_grid = Grid2D::from_vec(n, n, weights);
        let j = |circles: &SparseCircles| -> f64 {
            let c = compose(circles, &config);
            c.mask
                .as_slice()
                .iter()
                .zip(w_grid.as_slice())
                .map(|(&m, &w)| m * w)
                .sum()
        };
        let base = SparseCircles {
            circles: vec![
                CircleParams {
                    x: 12.3,
                    y: 15.1,
                    r: 5.2,
                    q: 0.9,
                },
                CircleParams {
                    x: 20.7,
                    y: 18.4,
                    r: 4.1,
                    q: 0.7,
                },
            ],
        };
        let composite = compose(&base, &config);
        let analytic = composite.backward(&w_grid);
        let eps = 1e-6;
        for p in 0..8 {
            let mut plus = base.clone();
            let mut flat = plus.to_flat();
            flat[p] += eps;
            plus.set_from_flat(&flat);
            let mut minus = base.clone();
            let mut flat = minus.to_flat();
            flat[p] -= eps;
            minus.set_from_flat(&flat);
            let fd = (j(&plus) - j(&minus)) / (2.0 * eps);
            assert!(
                (fd - analytic[p]).abs() < 1e-4 * fd.abs().max(analytic[p].abs()).max(1.0),
                "param {p}: fd={fd} analytic={}",
                analytic[p]
            );
        }
    }

    #[test]
    fn gradient_pushes_circle_toward_bright_pixels() {
        // Loss gradient negative on the right rim (wants more mask
        // there): ∂L/∂x must be negative so descending x += -grad moves
        // the circle right (paper Figure 5(a)).
        let n = 32;
        let circles = single(16.0, 16.0, 5.0, 1.0);
        let c = compose(&circles, &cfg(n));
        let mut grad = Grid2D::new(n, n, 0.0);
        for y in 12..21 {
            grad[(21, y)] = -1.0; // right rim pixels want to be brighter
        }
        let grads = c.backward(&grad);
        assert!(
            grads[0] < 0.0,
            "x gradient should point left (descend → right)"
        );
        assert!(grads[1].abs() < grads[0].abs() * 0.2, "y roughly balanced");
    }

    #[test]
    fn outside_pixel_gradients_grow_the_radius() {
        // Paper Figure 5(b): bright demand just outside the rim makes
        // ∂L/∂r negative (descent grows the circle).
        let n = 32;
        let circles = single(16.0, 16.0, 5.0, 1.0);
        let c = compose(&circles, &cfg(n));
        let mut grad = Grid2D::new(n, n, 0.0);
        for y in 10..23 {
            for x in 10..23 {
                let d = (((x - 16) * (x - 16) + (y - 16) * (y - 16)) as f64).sqrt();
                if d > 5.0 && d < 8.0 {
                    grad[(x as usize, y as usize)] = -1.0;
                }
            }
        }
        let grads = c.backward(&grad);
        assert!(
            grads[2] < 0.0,
            "radius gradient should be negative, got {}",
            grads[2]
        );
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn backward_checks_shape() {
        let c = compose(&single(16.0, 16.0, 5.0, 1.0), &cfg(32));
        let wrong = Grid2D::new(8, 8, 0.0);
        let _ = c.backward(&wrong);
    }
}
