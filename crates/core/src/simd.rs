//! Bit-exact SIMD kernels for the composition engine's per-pixel math.
//!
//! The hot inner loops of both composition flavours spend their time on
//! `d = √((x−cx)² + (y−cy)²)` followed by a sigmoid. The distance row is
//! vectorized here with explicit AVX2 intrinsics; the sigmoid keeps its
//! scalar `exp` but gains an **exact** saturation shortcut.
//!
//! # Why the SIMD path is bit-identical
//!
//! Every operation in the distance kernel — subtract, multiply, add,
//! square root — is IEEE-754 correctly rounded in both its scalar and
//! its packed (`vsubpd`/`vmulpd`/`vaddpd`/`vsqrtpd`) form, so a lane of
//! the vector computes *the same bits* as the scalar expression as long
//! as the operation sequence matches. The kernel therefore mirrors the
//! serial reference exactly: `dx·dx + dy²` then `sqrt`, never an FMA
//! (contraction would change the rounding), and pixel coordinates are
//! materialized as exact integer-valued `f64`s (all < 2⁵³). The
//! property tests in `tests/properties.rs` and the unit tests below
//! hold the dispatch to this contract on every build.
//!
//! # Feature detection and fallback policy
//!
//! The AVX2 path is compiled only for `x86_64` and selected at runtime
//! via [`std::arch::is_x86_feature_detected!`], latched once in an
//! atomic so steady-state dispatch is a relaxed load. Non-x86 targets
//! (and x86 machines without AVX2) take the scalar fallback, which is
//! the definition of the kernel's semantics — the SIMD path must match
//! it bit-for-bit, so switching paths can never change results.
//!
//! # The saturation shortcut
//!
//! `sigmoid(t) = 1/(1+e^{−t})` evaluates to **exactly** `1.0` once
//! `e^{−t} ≤ 2⁻⁵³` (half an ulp of 1.0): the addition `1 + e^{−t}`
//! rounds to `1.0` and the division returns `1.0`. That holds for every
//! `t ≥ 37` (`e^{−37} ≈ 8.5·10⁻¹⁷ < 1.11·10⁻¹⁶ = 2⁻⁵³`); [`SIGMOID_SAT`]
//! is set to `40` for slack. [`sigmoid_sat`] uses the shortcut to skip
//! the `exp` call for deep-interior pixels while returning the same
//! bits as the full evaluation — asserted by a unit test against the
//! plain [`sigmoid`].

// The saturation shortcut and its threshold are the litho crate's
// canonical definitions now (the resist model is the other consumer);
// re-exported here so the composition loops keep their import path.
pub(crate) use cfaopc_litho::{sigmoid_sat, SIGMOID_SAT};

/// Fills `d[k] = √((x0+k − cx)² + dy2)` for `k in 0..d.len()`.
///
/// `dy2` is the caller's pre-squared row term `(y − cy)·(y − cy)`;
/// squaring it once per row instead of once per pixel is exact (it is
/// the same correctly-rounded product every time). Dispatches to AVX2
/// when available, scalar otherwise — both produce identical bits.
#[inline]
pub(crate) fn fill_dist_row(d: &mut [f64], x0: usize, cx: f64, dy2: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: the AVX2 feature was detected at runtime on this
            // CPU, which is the only precondition of the target_feature
            // function below.
            #[allow(unsafe_code)]
            unsafe {
                fill_dist_row_avx2(d, x0, cx, dy2);
            }
            return;
        }
    }
    fill_dist_row_scalar(d, x0, cx, dy2);
}

/// Scalar reference kernel — the definition of [`fill_dist_row`]'s
/// semantics, and the fallback for non-x86 targets.
#[inline]
fn fill_dist_row_scalar(d: &mut [f64], x0: usize, cx: f64, dy2: f64) {
    for (k, slot) in d.iter_mut().enumerate() {
        let dx = (x0 + k) as f64 - cx;
        *slot = (dx * dx + dy2).sqrt();
    }
}

// Shared runtime-detection latch (one OnceLock for the whole workspace,
// defined next to the FFT butterflies).
#[cfg(target_arch = "x86_64")]
use cfaopc_fft::simd::avx2_available;

/// AVX2 kernel: four pixels per iteration via packed sub/mul/add/sqrt.
///
/// All four packed ops are IEEE correctly rounded, matching the scalar
/// kernel lane-for-lane; no FMA is emitted (the intrinsics fix the
/// instruction selection, unlike autovectorized `mul_add`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
// SAFETY: callers must have verified AVX2 support (the `fill_dist_row`
// dispatcher gates on `avx2_available()`); beyond that the function has
// no preconditions — every store is bounds-checked against `d.len()`.
unsafe fn fill_dist_row_avx2(d: &mut [f64], x0: usize, cx: f64, dy2: f64) {
    use std::arch::x86_64::*;
    let n = d.len();
    let cxv = _mm256_set1_pd(cx);
    let dy2v = _mm256_set1_pd(dy2);
    let mut k = 0usize;
    while k + 4 <= n {
        // (x0+k..x0+k+3) as f64 is exact (pixel indices are far below
        // 2^53), so each lane holds the same dx input as the scalar
        // kernel's `(x0 + k) as f64`.
        let xv = _mm256_set_pd(
            (x0 + k + 3) as f64,
            (x0 + k + 2) as f64,
            (x0 + k + 1) as f64,
            (x0 + k) as f64,
        );
        let dx = _mm256_sub_pd(xv, cxv);
        let d2 = _mm256_add_pd(_mm256_mul_pd(dx, dx), dy2v);
        let dist = _mm256_sqrt_pd(d2);
        // SAFETY: `k + 4 <= n` bounds the 4-lane store inside `d`.
        unsafe {
            _mm256_storeu_pd(d.as_mut_ptr().add(k), dist);
        }
        k += 4;
    }
    fill_dist_row_scalar(&mut d[k..], x0 + k, cx, dy2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfaopc_litho::sigmoid;

    #[test]
    fn sigmoid_saturates_to_exactly_one_at_threshold() {
        // The rounding lemma the shortcut relies on: at and beyond the
        // saturation threshold the *full* evaluation already returns 1.0
        // bit-exactly, while clearly below it the sigmoid is still < 1.
        for t in [37.0, 38.0, SIGMOID_SAT, 50.0, 300.0] {
            assert_eq!(sigmoid(t), 1.0, "sigmoid({t}) must saturate exactly");
            assert_eq!(sigmoid_sat(t), 1.0);
        }
        assert!(
            sigmoid(30.0) < 1.0,
            "well below threshold must not saturate"
        );
    }

    #[test]
    fn sigmoid_sat_bit_identical_to_sigmoid() {
        let mut t = -60.0;
        while t <= 60.0 {
            assert_eq!(sigmoid_sat(t), sigmoid(t), "t={t}");
            t += 0.37;
        }
    }

    #[test]
    fn dist_row_matches_scalar_reference_bitwise() {
        // Cover every alignment phase of the 4-lane kernel, including
        // scalar tails, against awkward (non-representable) centers.
        for len in 0..23usize {
            for &(cx, cy) in &[(7.3_f64, 11.9_f64), (-2.25, 40.125), (1000.7, 0.1)] {
                let y = 13.0;
                let dyv = y - cy;
                let dy2 = dyv * dyv;
                let mut fast = vec![0.0; len];
                let mut slow = vec![0.0; len];
                fill_dist_row(&mut fast, 5, cx, dy2);
                fill_dist_row_scalar(&mut slow, 5, cx, dy2);
                for k in 0..len {
                    assert_eq!(
                        fast[k].to_bits(),
                        slow[k].to_bits(),
                        "len={len} k={k} cx={cx}"
                    );
                }
            }
        }
    }

    #[test]
    fn dist_row_matches_open_coded_pixel_math() {
        // The kernel must reproduce the composition loops' historical
        // per-pixel expression `((x-cx)^2 + (y-cy)^2).sqrt()` exactly.
        let (cx, cy) = (18.6_f64, 9.2_f64);
        let y = 14usize;
        let dyv = y as f64 - cy;
        let mut row = vec![0.0; 17];
        fill_dist_row(&mut row, 3, cx, dyv * dyv);
        for (k, &d) in row.iter().enumerate() {
            let x = 3 + k;
            let reference = (((x as f64 - cx).powi(2)) + ((y as f64 - cy).powi(2))).sqrt();
            assert_eq!(d.to_bits(), reference.to_bits(), "x={x}");
        }
    }
}
