//! **CircleOpt** — circular fracturing-aware inverse lithography.
//!
//! This crate is the paper's primary contribution: masks optimized
//! *directly in the circular-shot domain* of the variable-radius e-beam
//! writer, so the result is simultaneously a high-quality ILT mask and a
//! finished fracturing solution.
//!
//! The pieces, mapped to the paper:
//!
//! | Module / item        | Paper section                                    |
//! |----------------------|--------------------------------------------------|
//! | [`SparseCircles`]    | §4.2 sparse circular reparameterization          |
//! | [`ste`]              | Eq. 7–9 straight-through estimators              |
//! | [`compose`]          | Eq. 10–11 differentiable circle-to-pixel map     |
//! | [`Composite::backward`] | Eq. 12–14 + Eq. 16 manual gradients           |
//! | [`run_circleopt`]    | the full two-stage pipeline (Fig. 3), Eq. 15/17  |
//!
//! # Examples
//!
//! ```
//! use cfaopc_core::{run_circleopt, CircleOptConfig};
//! use cfaopc_grid::{fill_rect, BitGrid, Rect};
//! use cfaopc_litho::{LithoConfig, LithoSimulator};
//!
//! # fn main() -> Result<(), cfaopc_litho::LithoError> {
//! // A small, fast setup (tests / doc builds); real experiments use the
//! // default 512² grid.
//! let sim = LithoSimulator::new(LithoConfig {
//!     size: 128,
//!     kernel_count: 4,
//!     ..LithoConfig::default()
//! })?;
//! let mut target = BitGrid::new(128, 128);
//! fill_rect(&mut target, Rect::new(61, 40, 67, 88));
//! let config = CircleOptConfig {
//!     init_iterations: 2,
//!     circle_iterations: 2,
//!     ..CircleOptConfig::default()
//! };
//! let result = run_circleopt(&sim, &target, &config)?;
//! assert!(result.shot_count() > 0);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the composition engine's render/backward
// kernels carry narrow, per-site `#[allow(unsafe_code)]` exemptions for
// the disjoint-tile slice views and the AVX2 dispatch (each with a
// `// SAFETY:` contract, enforced by lint rule L1). Everything else in
// the crate remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod optimize;
mod repr;
mod simd;
mod soft;
mod ste;

pub use compose::{compose, compose_serial, ComposeConfig, ComposeWorkspace, Composite, TILE};
pub use optimize::Composition;
pub use optimize::{
    run_circleopt, run_circleopt_cancellable, run_circleopt_from, run_circleopt_from_traced,
    run_circleopt_traced, CircleOptConfig, CircleOptResult, CircleOptTrace,
};
pub use repr::{CircleParams, SparseCircles};
pub use soft::{compose_soft, compose_soft_serial, SoftComposite, SoftWorkspace};
pub use ste::{ste, SteValue};
