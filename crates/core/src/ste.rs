//! Straight-through estimators (paper Eq. 8–9, after Bengio et al. [15]).
//!
//! Centers and radii live on the integer pixel grid, so the forward pass
//! quantizes `STE(x) = Round(Clip(x, X_min, X_max))` while the backward
//! pass passes the gradient straight through inside the clip range:
//! `∂STE/∂x = 𝟙{X_min ≤ x ≤ X_max}`.

/// Result of one straight-through quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteValue {
    /// Forward value: `Round(Clip(x, lo, hi))`.
    pub value: i32,
    /// Backward gate: `1.0` when `lo ≤ x ≤ hi`, else `0.0` (Eq. 9).
    pub gate: f64,
}

/// Applies the straight-through estimator to `x` with bounds `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use cfaopc_core::ste;
///
/// assert_eq!(ste(12.4, 0.0, 64.0).value, 12);
/// assert_eq!(ste(12.4, 0.0, 64.0).gate, 1.0);
/// assert_eq!(ste(-3.0, 0.0, 64.0).value, 0); // clipped
/// assert_eq!(ste(-3.0, 0.0, 64.0).gate, 0.0); // gradient blocked
/// ```
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn ste(x: f64, lo: f64, hi: f64) -> SteValue {
    assert!(lo <= hi, "STE bounds inverted: [{lo}, {hi}]");
    SteValue {
        value: x.clamp(lo, hi).round() as i32,
        gate: if (lo..=hi).contains(&x) { 1.0 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_inside_range() {
        assert_eq!(ste(5.49, 0.0, 10.0).value, 5);
        assert_eq!(ste(5.5, 0.0, 10.0).value, 6);
        assert_eq!(ste(5.5, 0.0, 10.0).gate, 1.0);
    }

    #[test]
    fn clips_and_gates_outside_range() {
        let below = ste(-1.2, 0.0, 10.0);
        assert_eq!(below.value, 0);
        assert_eq!(below.gate, 0.0);
        let above = ste(11.7, 0.0, 10.0);
        assert_eq!(above.value, 10);
        assert_eq!(above.gate, 0.0);
    }

    #[test]
    fn boundary_values_pass_gradient() {
        assert_eq!(ste(0.0, 0.0, 10.0).gate, 1.0);
        assert_eq!(ste(10.0, 0.0, 10.0).gate, 1.0);
    }

    #[test]
    #[should_panic(expected = "STE bounds inverted")]
    fn inverted_bounds_panic() {
        ste(1.0, 5.0, 2.0);
    }
}
