//! Cancellation and teardown coverage under a forced 4-worker pool.
//!
//! A daemon's whole reuse story rests on one property: a run aborted
//! mid-flight — by a client cancel ([`LithoError::Cancelled`]) or by the
//! numerical-health guard ([`LithoError::NonFinite`]) — must leave the
//! worker pool and the simulator's cached kernel/FFT/buffer-pool state
//! exactly as reusable as a run that finished. One umbrella test pins
//! `CFAOPC_THREADS=4` before the pool is first consulted (separate
//! `#[test]`s would race on the process-wide pool setup), aborts runs
//! every way we support, and then demands a clean rerun on the *same*
//! simulator be bit-identical to the pristine reference.

use cfaopc_core::{
    run_circleopt_cancellable, run_circleopt_from, run_circleopt_traced, CircleOptConfig,
};
use cfaopc_fft::parallel::{pool_thread_count, worker_count};
use cfaopc_grid::{fill_rect, BitGrid, Rect};
use cfaopc_litho::{
    CancelToken, LithoConfig, LithoError, LithoSimulator, LossWeights, NonFiniteTerm,
};
use cfaopc_trace::{IterationRecord, MemorySink, TelemetrySink};

/// Sink that flips a [`CancelToken`] after `after` records — the
/// in-process analog of a client cancelling over the wire.
struct CancelAfter {
    token: CancelToken,
    after: usize,
    seen: usize,
}

impl TelemetrySink for CancelAfter {
    fn record(&mut self, _rec: &IterationRecord) {
        self.seen += 1;
        if self.seen == self.after {
            self.token.cancel();
        }
    }
}

fn bar_target(n: usize) -> BitGrid {
    let mut t = BitGrid::new(n, n);
    fill_rect(&mut t, Rect::new(61, 40, 67, 88));
    t
}

#[test]
fn aborted_runs_leave_pool_and_simulator_reusable() {
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    let sim = LithoSimulator::new(LithoConfig {
        size: 128,
        kernel_count: 6,
        ..LithoConfig::default()
    })
    .unwrap();
    let target = bar_target(sim.size());
    let cfg = CircleOptConfig {
        init_iterations: 4,
        circle_iterations: 8,
        ..CircleOptConfig::default()
    };

    // Pristine reference on the shared simulator; warms the pool.
    let mut ref_sink = MemorySink::new();
    let reference = run_circleopt_traced(&sim, &target, &cfg, &mut ref_sink).unwrap();
    assert!(
        reference.shot_count() > 0,
        "reference run must do real work"
    );
    let threads_before = pool_thread_count();
    assert!(threads_before > 0, "forced pool must actually exist");

    // 1. Pre-cancelled token: observed at stage-1 iteration 0, before
    //    any simulation work.
    let token = CancelToken::new();
    token.cancel();
    match run_circleopt_cancellable(&sim, &target, &cfg, &mut (), &token) {
        Err(LithoError::Cancelled { iteration }) => assert_eq!(iteration, 0),
        other => panic!("expected immediate Cancelled, got {other:?}"),
    }

    // 2. Mid-run client cancel: the sink cancels while handling the
    //    record of stage-2 iteration 1 (after 4 pixel + 2 circle
    //    records), so the loop top of iteration 2 must observe it.
    let token = CancelToken::new();
    let mut cancelling = CancelAfter {
        token: token.clone(),
        after: cfg.init_iterations + 2,
        seen: 0,
    };
    match run_circleopt_cancellable(&sim, &target, &cfg, &mut cancelling, &token) {
        Err(LithoError::Cancelled { iteration }) => {
            assert_eq!(iteration, 2, "cancel observed at the next iteration top")
        }
        other => panic!("expected mid-run Cancelled, got {other:?}"),
    }

    // 3. Typed health-guard abort mid-run: poisoned weights on a warm
    //    restart trip NonFinite in the circle stage.
    let bad = CircleOptConfig {
        weights: LossWeights {
            l2: f64::NAN,
            pvb: 1.0,
        },
        ..cfg.clone()
    };
    match run_circleopt_from(&sim, &target, &bad, reference.circles.clone()) {
        Err(LithoError::NonFinite { iteration, term }) => {
            assert_eq!(iteration, 0);
            assert_eq!(term, NonFiniteTerm::LossTotal);
        }
        other => panic!("expected NonFinite abort, got {other:?}"),
    }

    // After all three aborts: same simulator, same pool, clean token —
    // the rerun must be bit-identical to the pristine reference, down to
    // the telemetry stream.
    let token = CancelToken::new();
    let mut rerun_sink = MemorySink::new();
    let rerun = run_circleopt_cancellable(&sim, &target, &cfg, &mut rerun_sink, &token).unwrap();
    assert_eq!(rerun.mask, reference.mask);
    assert_eq!(rerun.mask_raster, reference.mask_raster);
    assert_eq!(rerun.history.len(), reference.history.len());
    for (a, b) in rerun.history.iter().zip(&reference.history) {
        assert_eq!(a.loss.total.to_bits(), b.loss.total.to_bits());
        assert_eq!(a.sparsity.to_bits(), b.sparsity.to_bits());
        assert_eq!(a.active, b.active);
    }
    assert_eq!(rerun_sink.records(), ref_sink.records());

    // The aborts spawned no replacement threads and leaked no workers.
    assert_eq!(
        pool_thread_count(),
        threads_before,
        "aborts must not cost pool threads"
    );
}
