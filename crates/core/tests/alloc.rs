//! Guard: the steady-state CircleOpt iteration (hard-max path) performs
//! **zero net heap growth** after warm-up.
//!
//! The iteration body below is the same sequence `run_circleopt_impl`
//! executes per step — compose into a reused [`ComposeWorkspace`],
//! pooled `loss_and_gradient_into`, `backward_into` a reused gradient
//! buffer, Lasso subgradient, Adam step — driven through the public API
//! so a counting global allocator can watch it. Transient allocations
//! that free within the iteration (parallel-region bookkeeping, the
//! adjoint's per-kernel contribution lists) net to zero; what this test
//! forbids is *growth*: any buffer allocated per iteration and kept, or
//! reallocated bigger each step, shows up as a positive byte delta.
//!
//! The lib crates themselves stay `#![forbid(unsafe_code)]`; the
//! allocator shim is unsafe and lives only in this test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

use cfaopc_core::{CircleParams, ComposeConfig, ComposeWorkspace, SparseCircles};
use cfaopc_grid::{fill_rect, BitGrid, Grid2D, Rect};
use cfaopc_ilt::{Optimizer, OptimizerKind};
use cfaopc_litho::{loss_and_gradient_into, LithoConfig, LithoSimulator, LossWeights};

/// Wraps the system allocator, tracking net live bytes.
struct CountingAlloc;

static NET_BYTES: AtomicIsize = AtomicIsize::new(0);

fn net_bytes() -> isize {
    NET_BYTES.load(Ordering::SeqCst)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::SeqCst);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_circleopt_iteration_is_allocation_free() {
    let sim = LithoSimulator::new(LithoConfig {
        size: 64,
        kernel_count: 4,
        ..LithoConfig::default()
    })
    .unwrap();
    let n = sim.size();
    let mut target = BitGrid::new(n, n);
    fill_rect(&mut target, Rect::new(24, 16, 40, 48));
    let target_real = target.to_real();
    let weights = LossWeights::default();
    let gamma = 3.0;

    // A spread of circles covering several tiles, some destined to go
    // negative under Lasso pressure (exercising the q-floor skip).
    let mut circles = SparseCircles {
        circles: (0..12)
            .map(|i| CircleParams {
                x: 12.0 + 4.0 * (i % 4) as f64,
                y: 14.0 + 11.0 * (i / 4) as f64,
                r: 4.0 + (i % 3) as f64,
                q: if i % 5 == 0 { 0.05 } else { 1.0 },
            })
            .collect(),
    };
    let compose_cfg = ComposeConfig::new(n, 2, 8);
    let mut flat = circles.to_flat();
    let mut optimizer = Optimizer::new(OptimizerKind::adam(0.1), flat.len());
    let mut ws = ComposeWorkspace::new();
    let mut grad_mask = Grid2D::new(n, n, 0.0);
    let mut grads: Vec<f64> = Vec::new();

    const WARMUP: usize = 3;
    const MEASURED: usize = 6;
    let mut baseline = 0isize;
    for it in 0..WARMUP + MEASURED {
        circles.set_from_flat(&flat);
        ws.compose(&circles, &compose_cfg);
        let _loss =
            loss_and_gradient_into(&sim, ws.mask(), &target_real, weights, &mut grad_mask).unwrap();
        ws.backward_into(&grad_mask, &mut grads);
        for (i, c) in circles.circles.iter().enumerate() {
            grads[4 * i + 3] += gamma * c.q.signum() * if c.q == 0.0 { 0.0 } else { 1.0 };
        }
        optimizer.step(&mut flat, &grads);
        if it + 1 == WARMUP {
            baseline = net_bytes();
        }
    }
    let growth = net_bytes() - baseline;
    assert_eq!(
        growth, 0,
        "steady-state CircleOpt iterations grew the heap by {growth} bytes over {MEASURED} iterations"
    );
}
