//! Guard: the steady-state CircleOpt iteration (hard-max path) performs
//! **zero net heap growth** after warm-up.
//!
//! The iteration body below is the same sequence `run_circleopt_impl`
//! executes per step — compose into a reused [`ComposeWorkspace`],
//! pooled `loss_and_gradient_into`, `backward_into` a reused gradient
//! buffer, Lasso subgradient, Adam step — driven through the public API
//! so a counting global allocator can watch it. Transient allocations
//! that free within the iteration (parallel-region bookkeeping, the
//! adjoint's per-kernel contribution lists) net to zero; what this test
//! forbids is *growth*: any buffer allocated per iteration and kept, or
//! reallocated bigger each step, shows up as a positive byte delta.
//!
//! `backward_into` runs the fused compose+backward path (band-partial
//! scratch lives in the workspace), so this guard also pins the fused
//! sweep's steady state to zero growth once the partials buffer warms
//! up. The lib crates keep `unsafe` denied by default with narrow
//! per-site `// SAFETY:`-documented exemptions in the render/backward
//! kernels; the allocator shim here is unsafe and lives only in this
//! test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

use cfaopc_core::{CircleParams, ComposeConfig, ComposeWorkspace, SoftWorkspace, SparseCircles};
use cfaopc_grid::{fill_rect, BitGrid, Grid2D, Rect};
use cfaopc_ilt::{Optimizer, OptimizerKind};
use cfaopc_litho::{loss_and_gradient_into, LithoConfig, LithoSimulator, LossWeights};
use cfaopc_trace::{grad_norms, IterationRecord, MemorySink, Stage, TelemetrySink};

/// Wraps the system allocator, tracking net live bytes.
struct CountingAlloc;

static NET_BYTES: AtomicIsize = AtomicIsize::new(0);

fn net_bytes() -> isize {
    NET_BYTES.load(Ordering::SeqCst)
}

// SAFETY: pure pass-through to `System` plus a relaxed byte counter; the
// counter has no effect on the allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: forwards `layout` unchanged to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        NET_BYTES.fetch_add(layout.size() as isize, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    // SAFETY: forwards the pointer/layout pair it was handed to
    // `System.dealloc` without modification.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::SeqCst);
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all arguments unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        NET_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP: usize = 3;
const MEASURED: usize = 6;

struct Fixture {
    sim: LithoSimulator,
    target_real: Grid2D<f64>,
    circles: SparseCircles,
    compose_cfg: ComposeConfig,
}

fn fixture() -> Fixture {
    let sim = LithoSimulator::new(LithoConfig {
        size: 64,
        kernel_count: 4,
        ..LithoConfig::default()
    })
    .unwrap();
    let n = sim.size();
    let mut target = BitGrid::new(n, n);
    fill_rect(&mut target, Rect::new(24, 16, 40, 48));
    let target_real = target.to_real();

    // A spread of circles covering several tiles, some destined to go
    // negative under Lasso pressure (exercising the q-floor skip).
    let circles = SparseCircles {
        circles: (0..12)
            .map(|i| CircleParams {
                x: 12.0 + 4.0 * (i % 4) as f64,
                y: 14.0 + 11.0 * (i / 4) as f64,
                r: 4.0 + (i % 3) as f64,
                q: if i % 5 == 0 { 0.05 } else { 1.0 },
            })
            .collect(),
    };
    let compose_cfg = ComposeConfig::new(n, 2, 8);
    Fixture {
        sim,
        target_real,
        circles,
        compose_cfg,
    }
}

/// Records one telemetry iteration exactly as `run_circleopt_impl` does —
/// gradient norms plus a sink record — so the measurement covers the
/// tracing hot path, not just the numeric one.
fn record_iteration(sink: &mut MemorySink, it: usize, sparsity: f64, grads: &[f64]) {
    let (grad_l2, grad_linf) = grad_norms(grads);
    sink.record(&IterationRecord {
        stage: Stage::CircleOpt,
        iteration: it,
        loss_l2: 0.0,
        loss_pvb: 0.0,
        loss_total: 0.0,
        sparsity,
        active: 0,
        grad_l2,
        grad_linf,
    });
}

#[test]
fn steady_state_circleopt_iteration_is_allocation_free() {
    // Tracing stays enabled for the whole binary: spans, counters, and
    // the sink all run inside the measured window and must not allocate
    // once their nodes/buffers exist (warm-up covers first-touch).
    cfaopc_trace::set_enabled(true);
    let Fixture {
        sim,
        target_real,
        mut circles,
        compose_cfg,
    } = fixture();
    let n = sim.size();
    let weights = LossWeights::default();
    let gamma = 3.0;

    let mut flat = circles.to_flat();
    let mut optimizer = Optimizer::new(OptimizerKind::adam(0.1), flat.len());
    let mut ws = ComposeWorkspace::new();
    let mut grad_mask = Grid2D::new(n, n, 0.0);
    let mut grads: Vec<f64> = Vec::new();
    let mut sink = MemorySink::with_capacity(WARMUP + MEASURED);

    let mut baseline = 0isize;
    for it in 0..WARMUP + MEASURED {
        let _span = cfaopc_trace::span("alloc_test.hard_max_iter");
        circles.set_from_flat(&flat);
        ws.compose(&circles, &compose_cfg);
        let _loss =
            loss_and_gradient_into(&sim, ws.mask(), &target_real, weights, &mut grad_mask).unwrap();
        ws.backward_into(&grad_mask, &mut grads);
        let mut sparsity = 0.0;
        for (i, c) in circles.circles.iter().enumerate() {
            sparsity += c.q.abs();
            grads[4 * i + 3] += gamma * c.q.signum() * if c.q == 0.0 { 0.0 } else { 1.0 };
        }
        record_iteration(&mut sink, it, gamma * sparsity, &grads);
        optimizer.step(&mut flat, &grads);
        if it + 1 == WARMUP {
            baseline = net_bytes();
        }
    }
    let growth = net_bytes() - baseline;
    assert_eq!(
        growth, 0,
        "steady-state CircleOpt iterations grew the heap by {growth} bytes over {MEASURED} iterations"
    );
    assert_eq!(sink.records().len(), WARMUP + MEASURED);
}

#[test]
fn steady_state_softmax_iteration_is_allocation_free() {
    // Same guard for the softmax composition branch: the reused
    // `SoftWorkspace` (numerator/normalizer grids, tile buckets) plus
    // `backward_into` must reach zero net growth after warm-up, with the
    // telemetry path attached exactly as in the hard-max test.
    cfaopc_trace::set_enabled(true);
    let Fixture {
        sim,
        target_real,
        mut circles,
        compose_cfg,
    } = fixture();
    let n = sim.size();
    let weights = LossWeights::default();
    let gamma = 3.0;
    let beta = 20.0;

    let mut flat = circles.to_flat();
    let mut optimizer = Optimizer::new(OptimizerKind::adam(0.1), flat.len());
    let mut soft_ws = SoftWorkspace::new();
    let mut grad_mask = Grid2D::new(n, n, 0.0);
    let mut grads: Vec<f64> = Vec::new();
    let mut sink = MemorySink::with_capacity(WARMUP + MEASURED);

    let mut baseline = 0isize;
    for it in 0..WARMUP + MEASURED {
        let _span = cfaopc_trace::span("alloc_test.softmax_iter");
        circles.set_from_flat(&flat);
        soft_ws.compose(&circles, &compose_cfg, beta);
        let _loss =
            loss_and_gradient_into(&sim, soft_ws.mask(), &target_real, weights, &mut grad_mask)
                .unwrap();
        soft_ws.backward_into(&grad_mask, &mut grads);
        let mut sparsity = 0.0;
        for (i, c) in circles.circles.iter().enumerate() {
            sparsity += c.q.abs();
            grads[4 * i + 3] += gamma * c.q.signum() * if c.q == 0.0 { 0.0 } else { 1.0 };
        }
        record_iteration(&mut sink, it, gamma * sparsity, &grads);
        optimizer.step(&mut flat, &grads);
        if it + 1 == WARMUP {
            baseline = net_bytes();
        }
    }
    let growth = net_bytes() - baseline;
    assert_eq!(
        growth, 0,
        "steady-state softmax iterations grew the heap by {growth} bytes over {MEASURED} iterations"
    );
    assert_eq!(sink.records().len(), WARMUP + MEASURED);
}
