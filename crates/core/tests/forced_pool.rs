//! Bit-identity of the composition engine across worker counts.
//!
//! A single umbrella test pins `CFAOPC_THREADS=4` before the pool is
//! first consulted (same pattern as the fft crate's concurrency tests),
//! so a real 4-worker pool is exercised even on single-core CI
//! machines. Every scenario is then run three ways — serial reference,
//! engine under `with_worker_limit(1)`, and engine on the full forced
//! pool — and all three must agree bit for bit: the dirty-tile claiming
//! order and the fused backward's band-partial merge are designed to be
//! schedule-independent, and this is where that claim is checked.
//! (Separate `#[test]`s would race on the process-wide pool setup.)

use cfaopc_core::{
    compose_serial, compose_soft_serial, CircleParams, ComposeConfig, ComposeWorkspace,
    SoftWorkspace, SparseCircles, TILE,
};
use cfaopc_fft::parallel::{with_worker_limit, worker_count};
use cfaopc_grid::Grid2D;

const N: usize = 3 * TILE + 7; // ragged edge tiles included
const BETA: f64 = 20.0;

fn cfg() -> ComposeConfig {
    ComposeConfig::new(N, 2, 10)
}

fn wavy_grad() -> Grid2D<f64> {
    Grid2D::from_vec(
        N,
        N,
        (0..N * N)
            .map(|i| ((i as f64 * 0.7310).sin() - 0.3) * 0.2)
            .collect(),
    )
}

/// A deterministic pseudo-random circle set: overlapping, spanning tile
/// boundaries, with `q` values both above and below any sensible floor.
fn scattered_circles(count: usize, seed: u64) -> SparseCircles {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    let circles = (0..count)
        .map(|_| CircleParams {
            x: 4.0 + next() * (N as f64 - 8.0),
            y: 4.0 + next() * (N as f64 - 8.0),
            r: 2.0 + next() * 8.0,
            q: next() * 2.0 - 0.5,
        })
        .collect();
    SparseCircles { circles }
}

/// Circles crowded onto the tile-boundary cross at `x = y = TILE`, so
/// windows straddle up to four tiles.
fn straddling_circles() -> SparseCircles {
    let b = TILE as f64;
    SparseCircles {
        circles: vec![
            CircleParams {
                x: b - 1.5,
                y: b + 0.5,
                r: 9.0,
                q: 1.3,
            },
            CircleParams {
                x: b + 2.0,
                y: b - 3.0,
                r: 7.5,
                q: 0.7,
            },
            CircleParams {
                x: b + 0.25,
                y: b + 0.25,
                r: 4.0,
                q: 1.9,
            },
            CircleParams {
                x: b - 6.0,
                y: b - 6.0,
                r: 6.0,
                q: -0.2,
            },
            CircleParams {
                x: 2.0 * b,
                y: b,
                r: 8.0,
                q: 0.4,
            },
        ],
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Hard-max path: workspace forward + fused backward at the ambient
/// worker count must match the serial reference exactly.
fn check_hard(circles: &SparseCircles, config: &ComposeConfig, label: &str) {
    let reference = compose_serial(circles, config);
    let grad = wavy_grad();
    let ref_grads = reference.backward_serial(&grad);

    let run = || {
        let mut ws = ComposeWorkspace::new();
        ws.compose(circles, config);
        assert_eq!(ws.mask(), &reference.mask, "{label}: mask mismatch");
        assert_eq!(ws.argmax(), &reference.argmax, "{label}: argmax mismatch");
        let mut grads = Vec::new();
        ws.backward_into(&grad, &mut grads);
        assert_eq!(
            bits(&grads),
            bits(&ref_grads),
            "{label}: fused backward not bit-identical"
        );
    };

    with_worker_limit(1, run);
    run(); // full forced pool
}

/// Soft path: same three-way agreement.
fn check_soft(circles: &SparseCircles, config: &ComposeConfig, label: &str) {
    let reference = compose_soft_serial(circles, config, BETA);
    let grad = wavy_grad();
    let ref_grads = reference.backward_serial(&grad);

    let run = || {
        let mut ws = SoftWorkspace::new();
        ws.compose(circles, config, BETA);
        assert_eq!(ws.mask(), &reference.mask, "{label}: soft mask mismatch");
        let mut grads = Vec::new();
        ws.backward_into(&grad, &mut grads);
        assert_eq!(
            bits(&grads),
            bits(&ref_grads),
            "{label}: soft backward not bit-identical"
        );
    };

    with_worker_limit(1, run);
    run();
}

/// A workspace reused across several different circle sets (the
/// optimizer's steady state) must stay bit-identical at every render.
fn reused_workspace_stays_identical() {
    let sets = [
        scattered_circles(24, 11),
        straddling_circles(),
        scattered_circles(3, 99),
        scattered_circles(40, 5),
    ];
    let grad = wavy_grad();
    let mut ws = ComposeWorkspace::new();
    let mut soft_ws = SoftWorkspace::new();
    let mut grads = Vec::new();
    for (i, set) in sets.iter().enumerate() {
        ws.compose(set, &cfg());
        let reference = compose_serial(set, &cfg());
        assert_eq!(ws.mask(), &reference.mask, "render {i}: stale mask");
        assert_eq!(ws.argmax(), &reference.argmax, "render {i}: stale argmax");
        ws.backward_into(&grad, &mut grads);
        assert_eq!(
            bits(&grads),
            bits(&reference.backward_serial(&grad)),
            "render {i}: stale backward"
        );

        soft_ws.compose(set, &cfg(), BETA);
        let soft_ref = compose_soft_serial(set, &cfg(), BETA);
        assert_eq!(
            soft_ws.mask(),
            &soft_ref.mask,
            "render {i}: stale soft mask"
        );
        soft_ws.backward_into(&grad, &mut grads);
        assert_eq!(
            bits(&grads),
            bits(&soft_ref.backward_serial(&grad)),
            "render {i}: stale soft backward"
        );
    }
}

#[test]
fn engine_bit_identical_across_worker_counts() {
    // Must run before anything touches the pool in this process.
    std::env::set_var("CFAOPC_THREADS", "4");
    assert_eq!(worker_count(), 4, "CFAOPC_THREADS must win at pool setup");

    let config = cfg();

    check_hard(&scattered_circles(32, 1), &config, "scattered");
    check_hard(&straddling_circles(), &config, "straddling");
    check_soft(&scattered_circles(32, 2), &config, "soft scattered");
    check_soft(&straddling_circles(), &config, "soft straddling");

    // q ≤ q_floor pruning must not change which circles the parallel
    // engine skips relative to the serial reference.
    let mut pruning = config;
    pruning.q_floor = 0.5;
    check_hard(&scattered_circles(32, 3), &pruning, "q_floor pruning");

    reused_workspace_stays_identical();
}
