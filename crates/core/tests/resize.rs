//! Alternating-grid-size regression tests for the pooled workspaces.
//!
//! A workspace that renders at size `n₁`, then `n₂`, then `n₁` again
//! must behave exactly like a fresh compose at every step. The failure
//! mode under test: `TileGrid::reset` historically dropped the dirty
//! flags on a size change, so a tile that held content before the
//! resize could come back stale after returning to the original size —
//! a tile whose bucket is now empty is only cleared if its dirty flag
//! says it must be. Two independent mechanisms defend this invariant:
//! the workspace reallocates (zero-filled) pixel buffers whenever the
//! grid size changes, and `TileGrid::reset` marks every tile dirty on a
//! tile-count change so the first render after a resize does one full
//! clear round. These tests pin the end-to-end invariant so removing
//! either defence without a replacement is caught.

use cfaopc_core::{
    compose_serial, compose_soft_serial, CircleParams, ComposeConfig, ComposeWorkspace,
    SoftWorkspace, SparseCircles, TILE,
};
use cfaopc_grid::Grid2D;

const BETA: f64 = 20.0;

fn cfg(n: usize) -> ComposeConfig {
    ComposeConfig::new(n, 2, 10)
}

/// Circles that put content into the high tile (beyond `TILE` in both
/// axes) of a `2·TILE` grid — the tile that must not survive stale.
fn corner_circles() -> SparseCircles {
    SparseCircles {
        circles: vec![
            CircleParams {
                x: TILE as f64 + 12.0,
                y: TILE as f64 + 14.0,
                r: 7.0,
                q: 1.2,
            },
            CircleParams {
                x: TILE as f64 - 2.0,
                y: TILE as f64 + 3.0,
                r: 6.0,
                q: 0.8,
            },
        ],
    }
}

/// Circles confined to the low tile only, leaving the high tile's
/// bucket empty.
fn low_tile_circles() -> SparseCircles {
    SparseCircles {
        circles: vec![
            CircleParams {
                x: 10.0,
                y: 12.0,
                r: 5.0,
                q: 0.9,
            },
            CircleParams {
                x: 20.0,
                y: 8.0,
                r: 4.0,
                q: 0.6,
            },
        ],
    }
}

fn wavy_grad(n: usize) -> Grid2D<f64> {
    Grid2D::from_vec(
        n,
        n,
        (0..n * n)
            .map(|i| ((i as f64 * 0.7310).sin() - 0.3) * 0.2)
            .collect(),
    )
}

/// One full n₁ → n₂ → n₁ round-trip through a hard-max workspace, with
/// the third render leaving a previously-contented tile empty.
fn check_hard_roundtrip(n1: usize, n2: usize) {
    let mut ws = ComposeWorkspace::new();

    // Render 1 at n₁: content in the high tile.
    ws.compose(&corner_circles(), &cfg(n1));

    // Render 2 at n₂: different size, arbitrary content.
    ws.compose(&low_tile_circles(), &cfg(n2));

    // Render 3 back at n₁: the high tile's bucket is now empty. Any
    // stale pixels from render 1 would survive here if the resize path
    // lost the dirty flags.
    let third = low_tile_circles();
    ws.compose(&third, &cfg(n1));

    let reference = compose_serial(&third, &cfg(n1));
    assert_eq!(
        ws.mask(),
        &reference.mask,
        "stale mask after {n1}→{n2}→{n1}"
    );
    assert_eq!(
        ws.argmax(),
        &reference.argmax,
        "stale argmax after {n1}→{n2}→{n1}"
    );

    let grad = wavy_grad(n1);
    let mut grads = Vec::new();
    ws.backward_into(&grad, &mut grads);
    assert_eq!(
        grads,
        reference.backward_serial(&grad),
        "fused backward diverged after {n1}→{n2}→{n1}"
    );
}

/// Same round-trip through the soft-max workspace.
fn check_soft_roundtrip(n1: usize, n2: usize) {
    let mut ws = SoftWorkspace::new();
    ws.compose(&corner_circles(), &cfg(n1), BETA);
    ws.compose(&low_tile_circles(), &cfg(n2), BETA);
    let third = low_tile_circles();
    ws.compose(&third, &cfg(n1), BETA);

    let reference = compose_soft_serial(&third, &cfg(n1), BETA);
    assert_eq!(
        ws.mask(),
        &reference.mask,
        "stale soft mask after {n1}→{n2}→{n1}"
    );

    let grad = wavy_grad(n1);
    let mut grads = Vec::new();
    ws.backward_into(&grad, &mut grads);
    assert_eq!(
        grads,
        reference.backward_serial(&grad),
        "soft backward diverged after {n1}→{n2}→{n1}"
    );
}

#[test]
fn hard_workspace_survives_grow_shrink_cycle() {
    // n₂ > n₁: the resize grows the grid, then returns.
    check_hard_roundtrip(2 * TILE, 3 * TILE);
}

#[test]
fn hard_workspace_survives_shrink_grow_cycle() {
    // n₂ < n₁: shrink then grow back — same tile count at n₁ both
    // times, so the stale-tile hazard is identical.
    check_hard_roundtrip(3 * TILE, 2 * TILE);
}

#[test]
fn hard_workspace_survives_non_tile_aligned_sizes() {
    // Ragged edge tiles (n not a multiple of TILE) resize correctly.
    check_hard_roundtrip(2 * TILE + 9, TILE + 5);
}

#[test]
fn hard_workspace_survives_same_tile_count_resize() {
    // n changes but the tile count does not (both sizes land in the
    // same `div_ceil(TILE)` bucket), so `TileGrid::reset`'s size-change
    // branch never fires and the dirty flags persist across renders
    // with different tile geometry.
    check_hard_roundtrip(2 * TILE, 2 * TILE - 7);
}

#[test]
fn soft_workspace_survives_grow_shrink_cycle() {
    check_soft_roundtrip(2 * TILE, 3 * TILE);
}

#[test]
fn soft_workspace_survives_shrink_grow_cycle() {
    check_soft_roundtrip(3 * TILE, 2 * TILE);
}
