//! Property-based tests for the CircleOpt machinery.

use cfaopc_core::{
    compose, compose_serial, compose_soft, compose_soft_serial, CircleParams, ComposeConfig,
    ComposeWorkspace, SparseCircles, TILE,
};
use cfaopc_grid::Grid2D;
use proptest::prelude::*;

const N: usize = 48;

fn arb_circles(max_n: usize) -> impl Strategy<Value = SparseCircles> {
    proptest::collection::vec(
        (4.0f64..44.0, 4.0f64..44.0, 2.0f64..10.0, -0.5f64..1.5),
        1..max_n,
    )
    .prop_map(|v| SparseCircles {
        circles: v
            .into_iter()
            .map(|(x, y, r, q)| CircleParams { x, y, r, q })
            .collect(),
    })
}

/// Overlapping circles crowded around the N=48 grid's tile boundary
/// (x = y = [`TILE`]), so every case exercises windows straddling
/// multiple tiles; `q` spans negatives to cover pruned circles.
fn arb_straddling_circles(max_n: usize) -> impl Strategy<Value = SparseCircles> {
    let b = TILE as f64;
    proptest::collection::vec(
        (
            b - 8.0..b + 8.0,
            b - 8.0..b + 8.0,
            2.0f64..10.0,
            -0.5f64..1.5,
        ),
        2..max_n,
    )
    .prop_map(|v| SparseCircles {
        circles: v
            .into_iter()
            .map(|(x, y, r, q)| CircleParams { x, y, r, q })
            .collect(),
    })
}

fn cfg() -> ComposeConfig {
    ComposeConfig::new(N, 2, 10)
}

/// A deterministic non-uniform mask gradient, so backward bit-identity
/// checks see varied per-pixel weights.
fn wavy_grad() -> Grid2D<f64> {
    Grid2D::from_vec(
        N,
        N,
        (0..N * N)
            .map(|i| ((i as f64 * 0.7310).sin() - 0.3) * 0.2)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mask_value_equals_winning_circle(circles in arb_circles(8)) {
        let c = compose(&circles, &cfg());
        for y in 0..N {
            for x in 0..N {
                let idx = c.argmax[(x, y)];
                let v = c.mask[(x, y)];
                if idx < 0 {
                    prop_assert_eq!(v, 0.0);
                } else {
                    prop_assert!(v > 0.0, "claimed pixel with non-positive value {v}");
                }
            }
        }
    }

    #[test]
    fn mask_bounded_by_max_activation(circles in arb_circles(8)) {
        let c = compose(&circles, &cfg());
        let q_max = circles
            .circles
            .iter()
            .map(|c| c.q)
            .fold(0.0f64, f64::max)
            .max(0.0);
        for &v in c.mask.as_slice() {
            prop_assert!(v >= 0.0 && v <= q_max + 1e-12, "{v} vs {q_max}");
        }
    }

    #[test]
    fn zero_gradient_yields_zero_parameter_gradient(circles in arb_circles(6)) {
        let c = compose(&circles, &cfg());
        let zeros = Grid2D::new(N, N, 0.0);
        let grads = c.backward(&zeros);
        prop_assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn softmax_mask_below_hard_mask_plus_epsilon(circles in arb_circles(6)) {
        // Softmax averaging can only fall at or below the hard max.
        let hard = compose(&circles, &cfg());
        let soft = compose_soft(&circles, &cfg(), 20.0);
        for (s, h) in soft.mask.as_slice().iter().zip(hard.mask.as_slice()) {
            prop_assert!(*s <= *h + 1e-9, "soft {s} exceeds hard {h}");
        }
    }

    #[test]
    fn final_mask_respects_radius_bounds(circles in arb_circles(10)) {
        let mask = circles.to_circular_mask(0.5, N, N, 2, 10);
        for shot in mask.shots() {
            prop_assert!(shot.r >= 2 && shot.r <= 10);
            prop_assert!(shot.x >= 0 && shot.x < N as i32);
            prop_assert!(shot.y >= 0 && shot.y < N as i32);
        }
        prop_assert_eq!(mask.shot_count(), circles.active_count(0.5));
    }

    #[test]
    fn flat_roundtrip_is_lossless(circles in arb_circles(10)) {
        let mut copy = circles.clone();
        let flat = circles.to_flat();
        copy.set_from_flat(&flat);
        prop_assert_eq!(copy, circles);
    }

    #[test]
    fn tiled_compose_bit_identical_to_serial(circles in arb_circles(16)) {
        let tiled = compose(&circles, &cfg());
        let serial = compose_serial(&circles, &cfg());
        prop_assert_eq!(&tiled.mask, &serial.mask);
        prop_assert_eq!(&tiled.argmax, &serial.argmax);
        let grad = wavy_grad();
        prop_assert_eq!(tiled.backward(&grad), serial.backward_serial(&grad));
    }

    #[test]
    fn tile_straddling_overlaps_bit_identical_to_serial(circles in arb_straddling_circles(12)) {
        let tiled = compose(&circles, &cfg());
        let serial = compose_serial(&circles, &cfg());
        prop_assert_eq!(&tiled.mask, &serial.mask);
        prop_assert_eq!(&tiled.argmax, &serial.argmax);
        let grad = wavy_grad();
        prop_assert_eq!(tiled.backward(&grad), serial.backward_serial(&grad));
    }

    #[test]
    fn reused_workspace_bit_identical_to_serial(
        first in arb_circles(12),
        second in arb_straddling_circles(8),
    ) {
        // Dirty-tile tracking across renders must leave no stale pixels:
        // a workspace that rendered `first` then `second` matches a
        // from-scratch serial compose of `second` exactly.
        let mut ws = ComposeWorkspace::new();
        ws.compose(&first, &cfg());
        ws.compose(&second, &cfg());
        let serial = compose_serial(&second, &cfg());
        prop_assert_eq!(ws.mask(), &serial.mask);
        prop_assert_eq!(ws.argmax(), &serial.argmax);
        let grad = wavy_grad();
        let mut grads = Vec::new();
        ws.backward_into(&grad, &mut grads);
        prop_assert_eq!(grads, serial.backward_serial(&grad));
    }

    #[test]
    fn fused_backward_with_pruning_bit_identical_to_serial(
        circles in arb_straddling_circles(10),
        q_floor in 0.0f64..0.8,
    ) {
        // An activation floor makes both paths skip circles; the fused
        // sweep and the serial reference must skip the same set and
        // still agree bit for bit on the survivors' gradients.
        let mut config = cfg();
        config.q_floor = q_floor;
        let mut ws = ComposeWorkspace::new();
        ws.compose(&circles, &config);
        let serial = compose_serial(&circles, &config);
        prop_assert_eq!(ws.mask(), &serial.mask);
        prop_assert_eq!(ws.argmax(), &serial.argmax);
        let grad = wavy_grad();
        let mut grads = Vec::new();
        ws.backward_into(&grad, &mut grads);
        prop_assert_eq!(grads, serial.backward_serial(&grad));
    }

    #[test]
    fn tiled_soft_compose_bit_identical_to_serial(circles in arb_straddling_circles(8)) {
        let beta = 20.0;
        let tiled = compose_soft(&circles, &cfg(), beta);
        let serial = compose_soft_serial(&circles, &cfg(), beta);
        prop_assert_eq!(&tiled.mask, &serial.mask);
        let grad = wavy_grad();
        prop_assert_eq!(tiled.backward(&grad), serial.backward_serial(&grad));
    }

    #[test]
    fn quantized_compose_is_translation_consistent(dx in 1i32..4) {
        // Moving one circle by an integer offset translates its window.
        let a = SparseCircles {
            circles: vec![CircleParams { x: 20.0, y: 24.0, r: 6.0, q: 1.0 }],
        };
        let b = SparseCircles {
            circles: vec![CircleParams { x: 20.0 + dx as f64, y: 24.0, r: 6.0, q: 1.0 }],
        };
        let ca = compose(&a, &cfg());
        let cb = compose(&b, &cfg());
        for y in 0..N {
            for x in 0..N as i32 - dx {
                prop_assert!(
                    (ca.mask[(x as usize, y)] - cb.mask[((x + dx) as usize, y)]).abs() < 1e-12
                );
            }
        }
    }
}
