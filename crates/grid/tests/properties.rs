//! Property-based tests for the geometry substrate.

use cfaopc_grid::{
    connected_components, dilate, disk_area, disk_points, erode, fill_circle, fill_rect,
    skeletonize, BitGrid, Connectivity, Point, Rect, Structuring,
};
use proptest::prelude::*;

fn small_rects() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(
        (0i32..56, 0i32..56, 1i32..12, 1i32..12)
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h)),
        1..6,
    )
}

fn mask_from_rects(rects: &[Rect]) -> BitGrid {
    let mut m = BitGrid::new(64, 64);
    for &r in rects {
        fill_rect(&mut m, r);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn components_partition_the_mask(rects in small_rects()) {
        let m = mask_from_rects(&rects);
        let l = connected_components(&m, Connectivity::Eight);
        let total: usize = l.regions.iter().map(|r| r.points.len()).sum();
        prop_assert_eq!(total, m.count_ones());
        // Labels are consistent and non-overlapping.
        let mut seen = std::collections::HashSet::new();
        for region in &l.regions {
            for &p in &region.points {
                prop_assert!(seen.insert(p), "pixel {} in two regions", p);
                prop_assert!(m.at(p));
            }
        }
    }

    #[test]
    fn skeleton_is_subset_and_preserves_component_count(rects in small_rects()) {
        let m = mask_from_rects(&rects);
        let s = skeletonize(&m);
        for p in s.ones() {
            prop_assert!(m.at(p));
        }
        let before = connected_components(&m, Connectivity::Eight).regions.len();
        let after = connected_components(&s, Connectivity::Eight).regions.len();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn dilation_grows_erosion_shrinks(rects in small_rects(), r in 0i32..3) {
        let m = mask_from_rects(&rects);
        let d = dilate(&m, Structuring::Disk(r));
        let e = erode(&m, Structuring::Disk(r));
        prop_assert!(d.count_ones() >= m.count_ones());
        prop_assert!(e.count_ones() <= m.count_ones());
        // Monotonicity: mask ⊆ dilation, erosion ⊆ mask.
        for p in m.ones() {
            prop_assert!(d.at(p));
        }
        for p in e.ones() {
            prop_assert!(m.at(p));
        }
    }

    #[test]
    fn disk_points_consistent_with_disk_area(cx in -10i32..74, cy in -10i32..74, r in 0i32..12) {
        // Unclipped count never exceeds disk_area; equality when fully on-grid.
        let pts = disk_points(Point::new(cx, cy), r, 64, 64);
        prop_assert!(pts.len() <= disk_area(r));
        if cx - r >= 0 && cy - r >= 0 && cx + r < 64 && cy + r < 64 {
            prop_assert_eq!(pts.len(), disk_area(r));
        }
        // Every reported point is on-grid and inside the disk.
        for p in pts {
            prop_assert!(p.x >= 0 && p.x < 64 && p.y >= 0 && p.y < 64);
            prop_assert!(p.dist_sqr(Point::new(cx, cy)) <= (r as i64) * (r as i64));
        }
    }

    #[test]
    fn fill_circle_equals_disk_points(cx in 0i32..32, cy in 0i32..32, r in 0i32..10) {
        let mut m = BitGrid::new(32, 32);
        fill_circle(&mut m, Point::new(cx, cy), r);
        let pts = disk_points(Point::new(cx, cy), r, 32, 32);
        prop_assert_eq!(m.count_ones(), pts.len());
        for p in pts {
            prop_assert!(m.at(p));
        }
    }

    #[test]
    fn xor_count_is_a_metric(a in small_rects(), b in small_rects()) {
        let ma = mask_from_rects(&a);
        let mb = mask_from_rects(&b);
        prop_assert_eq!(ma.xor_count(&ma), 0);
        prop_assert_eq!(ma.xor_count(&mb), mb.xor_count(&ma));
    }
}
