//! Rasterization of the primitive shapes the pipeline manipulates:
//! axis-aligned rectangles (target patterns), disks (circular shots) and
//! rectilinear polygons (benchmark layouts).

use crate::grid::{BitGrid, Point};

/// An axis-aligned rectangle, half-open: pixels with
/// `x0 <= x < x1` and `y0 <= y < y1` are inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i32,
    /// Top edge (inclusive).
    pub y0: i32,
    /// Right edge (exclusive).
    pub x1: i32,
    /// Bottom edge (exclusive).
    pub y1: i32,
}

impl Rect {
    /// Creates a rectangle; normalizes so `x0 <= x1`, `y0 <= y1`.
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> i32 {
        self.x1 - self.x0
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> i32 {
        self.y1 - self.y0
    }

    /// Area in pixels.
    #[inline]
    pub fn area(&self) -> i64 {
        self.width() as i64 * self.height() as i64
    }

    /// Returns `true` when the rectangle covers no pixels.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() <= 0 || self.height() <= 0
    }

    /// Returns `true` if `p` lies inside (half-open semantics).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// Rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: i32, dy: i32) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Rectangle with every coordinate multiplied by `num` then divided by
    /// `den` (used to rescale nm-coordinates onto coarser grids).
    pub fn scaled(&self, num: i32, den: i32) -> Rect {
        Rect::new(
            self.x0 * num / den,
            self.y0 * num / den,
            self.x1 * num / den,
            self.y1 * num / den,
        )
    }

    /// Intersection with another rectangle, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if r.is_degenerate() {
            None
        } else {
            Some(r)
        }
    }
}

/// Fills an axis-aligned rectangle (clipped to the grid).
pub fn fill_rect(mask: &mut BitGrid, rect: Rect) {
    let x0 = rect.x0.max(0) as usize;
    let y0 = rect.y0.max(0) as usize;
    let x1 = (rect.x1.max(0) as usize).min(mask.width());
    let y1 = (rect.y1.max(0) as usize).min(mask.height());
    for y in y0..y1 {
        for x in x0..x1 {
            mask.set(x, y, true);
        }
    }
}

/// Fills the disk `{p : |p - c| <= r}` (clipped to the grid).
///
/// The boundary is inclusive, matching the paper's definition of
/// `C(p, r)` as the set of points in the circle of radius `r`.
pub fn fill_circle(mask: &mut BitGrid, center: Point, radius: i32) {
    if radius < 0 {
        return;
    }
    let r2 = radius as i64 * radius as i64;
    let y_lo = (center.y - radius).max(0);
    let y_hi = (center.y + radius).min(mask.height() as i32 - 1);
    for y in y_lo..=y_hi {
        let dy = (y - center.y) as i64;
        // Solve dx^2 <= r^2 - dy^2 exactly in integers.
        let rem = r2 - dy * dy;
        let half = (rem as f64).sqrt().floor() as i32;
        // floating sqrt can be off by one near perfect squares; correct it.
        let half = correct_isqrt(half, rem);
        let x_lo = (center.x - half).max(0);
        let x_hi = (center.x + half).min(mask.width() as i32 - 1);
        for x in x_lo..=x_hi {
            mask.set(x as usize, y as usize, true);
        }
    }
}

fn correct_isqrt(mut guess: i32, target: i64) -> i32 {
    while (guess as i64 + 1) * (guess as i64 + 1) <= target {
        guess += 1;
    }
    while guess > 0 && (guess as i64) * (guess as i64) > target {
        guess -= 1;
    }
    guess
}

/// Enumerates the points of the disk `C(center, radius)` that fall on an
/// `width × height` grid. Used for cover-rate computations
/// (`|C(u,r) ∩ A|/|C(u,r)|`, Algorithm 1 line 20) where the full circle
/// size (including off-grid points) is needed separately — see
/// [`disk_area`].
pub fn disk_points(center: Point, radius: i32, width: usize, height: usize) -> Vec<Point> {
    let mut pts = Vec::new();
    if radius < 0 {
        return pts;
    }
    let r2 = radius as i64 * radius as i64;
    for y in (center.y - radius)..=(center.y + radius) {
        if y < 0 || y >= height as i32 {
            continue;
        }
        let dy = (y - center.y) as i64;
        let rem = r2 - dy * dy;
        let half = correct_isqrt((rem as f64).sqrt().floor() as i32, rem);
        for x in (center.x - half)..=(center.x + half) {
            if x >= 0 && x < width as i32 {
                pts.push(Point::new(x, y));
            }
        }
    }
    pts
}

/// Number of grid points in a radius-`r` disk (independent of position,
/// counting off-grid points too): `|{(x,y) ∈ ℤ² : x²+y² ≤ r²}|`.
pub fn disk_area(radius: i32) -> usize {
    if radius < 0 {
        return 0;
    }
    let r2 = radius as i64 * radius as i64;
    let mut count = 0usize;
    for y in -radius..=radius {
        let rem = r2 - (y as i64) * (y as i64);
        let half = correct_isqrt((rem as f64).sqrt().floor() as i32, rem);
        count += (2 * half + 1) as usize;
    }
    count
}

/// Fills a rectilinear polygon given as a closed vertex loop using even-odd
/// scanline parity. Vertices are pixel corners; the filled region follows
/// half-open semantics like [`Rect`].
///
/// # Panics
///
/// Panics if fewer than 4 vertices are supplied or consecutive vertices are
/// neither horizontally nor vertically aligned.
pub fn fill_rectilinear_polygon(mask: &mut BitGrid, vertices: &[Point]) {
    assert!(vertices.len() >= 4, "polygon needs at least 4 vertices");
    let n = vertices.len();
    for i in 0..n {
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        assert!(
            a.x == b.x || a.y == b.y,
            "polygon edges must be axis-aligned ({a} -> {b})"
        );
    }
    let y_min = vertices.iter().map(|p| p.y).min().unwrap_or(0).max(0);
    let y_max = vertices
        .iter()
        .map(|p| p.y)
        .max()
        .unwrap_or(0)
        .min(mask.height() as i32);
    for y in y_min..y_max {
        // Collect x-positions of vertical edges crossing scanline y+0.5.
        let mut xs: Vec<i32> = Vec::new();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            if a.x == b.x {
                let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
                if y >= lo && y < hi {
                    xs.push(a.x);
                }
            }
        }
        xs.sort_unstable();
        for pair in xs.chunks_exact(2) {
            let x0 = pair[0].max(0);
            let x1 = pair[1].min(mask.width() as i32);
            for x in x0..x1 {
                mask.set(x as usize, y as usize, true);
            }
        }
    }
}

/// Bilinearly upsamples a real grid by an integer `factor`, treating
/// samples as cell centers. Used to reconstruct smooth curvilinear
/// boundaries from coarse rasters before native-resolution fracturing.
pub fn upsample_bilinear(
    grid: &crate::grid::Grid2D<f64>,
    factor: usize,
) -> crate::grid::Grid2D<f64> {
    assert!(factor > 0, "factor must be positive");
    let (w, h) = (grid.width(), grid.height());
    let (ow, oh) = (w * factor, h * factor);
    let mut out = crate::grid::Grid2D::new(ow, oh, 0.0f64);
    let f = factor as f64;
    for oy in 0..oh {
        // Source coordinate of this output cell center.
        let sy = (oy as f64 + 0.5) / f - 0.5;
        let y0 = sy.floor().clamp(0.0, (h - 1) as f64) as usize;
        let y1 = (y0 + 1).min(h - 1);
        let ty = (sy - y0 as f64).clamp(0.0, 1.0);
        for ox in 0..ow {
            let sx = (ox as f64 + 0.5) / f - 0.5;
            let x0 = sx.floor().clamp(0.0, (w - 1) as f64) as usize;
            let x1 = (x0 + 1).min(w - 1);
            let tx = (sx - x0 as f64).clamp(0.0, 1.0);
            let top = grid[(x0, y0)] * (1.0 - tx) + grid[(x1, y0)] * tx;
            let bottom = grid[(x0, y1)] * (1.0 - tx) + grid[(x1, y1)] * tx;
            out[(ox, oy)] = top * (1.0 - ty) + bottom * ty;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsample_bilinear_constant_is_constant() {
        let g = crate::grid::Grid2D::new(4, 4, 0.7);
        let u = upsample_bilinear(&g, 4);
        assert_eq!(u.width(), 16);
        assert!(u.as_slice().iter().all(|&v| (v - 0.7).abs() < 1e-12));
    }

    #[test]
    fn upsample_bilinear_preserves_range_and_smooths_edges() {
        let mut g = crate::grid::Grid2D::new(8, 8, 0.0);
        for y in 0..8 {
            for x in 4..8 {
                g[(x, y)] = 1.0;
            }
        }
        let u = upsample_bilinear(&g, 4);
        assert!(u
            .as_slice()
            .iter()
            .all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
        // The edge between columns 3 and 4 becomes a gradient.
        let mid = u[(14, 16)];
        assert!(mid > 0.05 && mid < 0.95, "edge not smoothed: {mid}");
        assert_eq!(u[(0, 0)], 0.0);
        assert_eq!(u[(31, 31)], 1.0);
    }

    #[test]
    fn upsample_factor_one_is_identity() {
        let g = crate::grid::Grid2D::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(upsample_bilinear(&g, 1), g);
    }

    #[test]
    fn rect_normalizes() {
        let r = Rect::new(5, 6, 1, 2);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (1, 2, 5, 6));
        assert_eq!(r.area(), 16);
    }

    #[test]
    fn rect_contains_half_open() {
        let r = Rect::new(0, 0, 2, 2);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(1, 1)));
        assert!(!r.contains(Point::new(2, 1)));
        assert!(!r.contains(Point::new(-1, 0)));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 6, 6);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 4, 4)));
        let c = Rect::new(4, 0, 6, 4);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn fill_rect_clips() {
        let mut m = BitGrid::new(4, 4);
        fill_rect(&mut m, Rect::new(-2, -2, 2, 2));
        assert_eq!(m.count_ones(), 4);
        assert!(m.get(0, 0) && m.get(1, 1));
    }

    #[test]
    fn circle_radius_zero_is_single_pixel() {
        let mut m = BitGrid::new(5, 5);
        fill_circle(&mut m, Point::new(2, 2), 0);
        assert_eq!(m.count_ones(), 1);
        assert!(m.get(2, 2));
    }

    #[test]
    fn circle_matches_disk_area_when_unclipped() {
        for r in 0..12 {
            let n = 2 * r as usize + 3;
            let mut m = BitGrid::new(n, n);
            let c = Point::new(n as i32 / 2, n as i32 / 2);
            fill_circle(&mut m, c, r);
            assert_eq!(m.count_ones(), disk_area(r), "radius {r}");
            // and equals the brute-force definition
            let brute = (0..n as i32)
                .flat_map(|y| (0..n as i32).map(move |x| Point::new(x, y)))
                .filter(|p| p.dist_sqr(c) <= (r as i64) * (r as i64))
                .count();
            assert_eq!(m.count_ones(), brute);
        }
    }

    #[test]
    fn disk_points_counts_clipped() {
        let pts = disk_points(Point::new(0, 0), 2, 8, 8);
        // Only the quadrant with x>=0, y>=0 survives clipping.
        let brute = (-2..=2)
            .flat_map(|y| (-2..=2).map(move |x| Point::new(x, y)))
            .filter(|p| p.x >= 0 && p.y >= 0 && p.dist_sqr(Point::new(0, 0)) <= 4)
            .count();
        assert_eq!(pts.len(), brute);
    }

    #[test]
    fn disk_area_small_values() {
        assert_eq!(disk_area(0), 1);
        assert_eq!(disk_area(1), 5);
        assert_eq!(disk_area(2), 13);
        assert_eq!(disk_area(-1), 0);
    }

    #[test]
    fn circle_negative_radius_is_noop() {
        let mut m = BitGrid::new(4, 4);
        fill_circle(&mut m, Point::new(1, 1), -3);
        assert!(m.is_clear());
    }

    #[test]
    fn rectilinear_polygon_matches_rect() {
        let mut a = BitGrid::new(16, 16);
        let mut b = BitGrid::new(16, 16);
        fill_rect(&mut a, Rect::new(2, 3, 10, 12));
        fill_rectilinear_polygon(
            &mut b,
            &[
                Point::new(2, 3),
                Point::new(10, 3),
                Point::new(10, 12),
                Point::new(2, 12),
            ],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn rectilinear_polygon_l_shape() {
        // L-shape = union of two rects, as polygon.
        let mut poly = BitGrid::new(16, 16);
        fill_rectilinear_polygon(
            &mut poly,
            &[
                Point::new(0, 0),
                Point::new(4, 0),
                Point::new(4, 8),
                Point::new(8, 8),
                Point::new(8, 12),
                Point::new(0, 12),
            ],
        );
        let mut rects = BitGrid::new(16, 16);
        fill_rect(&mut rects, Rect::new(0, 0, 4, 12));
        fill_rect(&mut rects, Rect::new(4, 8, 8, 12));
        assert_eq!(poly, rects);
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn rectilinear_polygon_rejects_diagonals() {
        let mut m = BitGrid::new(8, 8);
        fill_rectilinear_polygon(
            &mut m,
            &[
                Point::new(0, 0),
                Point::new(4, 4),
                Point::new(4, 0),
                Point::new(0, 4),
            ],
        );
    }
}
