//! Binary morphology: dilation, erosion, opening, closing.
//!
//! Used to clean pixel-ILT masks before fracturing (remove single-pixel
//! specks that would violate the minimum shot radius) and to build the
//! optimization domains of the baseline ILT engines.

use crate::grid::{BitGrid, Point};

/// Structuring element shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structuring {
    /// Square of half-width `r` (Chebyshev ball) — separable and fast.
    Square(i32),
    /// Disk of radius `r` (Euclidean ball).
    Disk(i32),
}

impl Structuring {
    fn offsets(self) -> Vec<(i32, i32)> {
        match self {
            Structuring::Square(r) => {
                let r = r.max(0);
                let mut v = Vec::new();
                for dy in -r..=r {
                    for dx in -r..=r {
                        v.push((dx, dy));
                    }
                }
                v
            }
            Structuring::Disk(r) => {
                let r = r.max(0);
                let r2 = r as i64 * r as i64;
                let mut v = Vec::new();
                for dy in -r..=r {
                    for dx in -r..=r {
                        if (dx as i64 * dx as i64 + dy as i64 * dy as i64) <= r2 {
                            v.push((dx, dy));
                        }
                    }
                }
                v
            }
        }
    }
}

/// Dilation: a pixel is set if any pixel under the structuring element is
/// set. Square elements run separably (two 1-D passes).
pub fn dilate(mask: &BitGrid, elem: Structuring) -> BitGrid {
    match elem {
        Structuring::Square(r) => separable_extreme(mask, r.max(0), true),
        Structuring::Disk(_) => sweep(mask, elem, true),
    }
}

/// Erosion: a pixel stays set only if every pixel under the structuring
/// element is set (off-grid counts as background).
pub fn erode(mask: &BitGrid, elem: Structuring) -> BitGrid {
    match elem {
        Structuring::Square(r) => separable_extreme(mask, r.max(0), false),
        Structuring::Disk(_) => sweep(mask, elem, false),
    }
}

/// Opening: erosion then dilation — removes specks smaller than the element.
pub fn open(mask: &BitGrid, elem: Structuring) -> BitGrid {
    dilate(&erode(mask, elem), elem)
}

/// Closing: dilation then erosion — fills pinholes smaller than the element.
pub fn close(mask: &BitGrid, elem: Structuring) -> BitGrid {
    erode(&dilate(mask, elem), elem)
}

fn sweep(mask: &BitGrid, elem: Structuring, any: bool) -> BitGrid {
    let (w, h) = (mask.width(), mask.height());
    let offsets = elem.offsets();
    let mut out = BitGrid::new(w, h);
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let mut hit = !any;
            for &(dx, dy) in &offsets {
                let v = mask.at(Point::new(x + dx, y + dy));
                if any && v {
                    hit = true;
                    break;
                }
                if !any && !v {
                    hit = false;
                    break;
                }
            }
            out.set(x as usize, y as usize, hit);
        }
    }
    out
}

/// Separable max/min filter for square structuring elements.
fn separable_extreme(mask: &BitGrid, r: i32, any: bool) -> BitGrid {
    let (w, h) = (mask.width(), mask.height());
    let mut tmp = BitGrid::new(w, h);
    for y in 0..h {
        for x in 0..w as i32 {
            let mut hit = !any;
            for dx in -r..=r {
                let v = mask.at(Point::new(x + dx, y as i32));
                if any && v {
                    hit = true;
                    break;
                }
                if !any && !v {
                    hit = false;
                    break;
                }
            }
            tmp.set(x as usize, y, hit);
        }
    }
    let mut out = BitGrid::new(w, h);
    for y in 0..h as i32 {
        for x in 0..w {
            let mut hit = !any;
            for dy in -r..=r {
                let v = tmp.at(Point::new(x as i32, y + dy));
                if any && v {
                    hit = true;
                    break;
                }
                if !any && !v {
                    hit = false;
                    break;
                }
            }
            out.set(x, y as usize, hit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::{fill_rect, Rect};

    fn rect_mask(w: usize, h: usize, r: Rect) -> BitGrid {
        let mut m = BitGrid::new(w, h);
        fill_rect(&mut m, r);
        m
    }

    #[test]
    fn dilate_square_grows_rect() {
        let m = rect_mask(16, 16, Rect::new(6, 6, 10, 10));
        let d = dilate(&m, Structuring::Square(2));
        let expected = rect_mask(16, 16, Rect::new(4, 4, 12, 12));
        assert_eq!(d, expected);
    }

    #[test]
    fn erode_square_shrinks_rect() {
        let m = rect_mask(16, 16, Rect::new(4, 4, 12, 12));
        let e = erode(&m, Structuring::Square(2));
        let expected = rect_mask(16, 16, Rect::new(6, 6, 10, 10));
        assert_eq!(e, expected);
    }

    #[test]
    fn erode_then_dilate_removes_speck() {
        let mut m = rect_mask(32, 32, Rect::new(8, 8, 20, 20));
        m.set(28, 2, true); // isolated speck
        let opened = open(&m, Structuring::Square(1));
        assert!(!opened.get(28, 2));
        assert!(opened.get(10, 10));
        assert_eq!(opened.count_ones(), 144);
    }

    #[test]
    fn close_fills_pinhole() {
        let mut m = rect_mask(32, 32, Rect::new(8, 8, 20, 20));
        m.set(14, 14, false); // pinhole
        let closed = close(&m, Structuring::Square(1));
        assert!(closed.get(14, 14));
    }

    #[test]
    fn disk_dilation_is_symmetric() {
        let mut m = BitGrid::new(17, 17);
        m.set(8, 8, true);
        let d = dilate(&m, Structuring::Disk(4));
        assert_eq!(d.count_ones(), crate::raster::disk_area(4));
        for (dx, dy) in [(4, 0), (-4, 0), (0, 4), (0, -4)] {
            assert!(d.at(Point::new(8 + dx, 8 + dy)));
        }
        assert!(!d.at(Point::new(8 + 3, 8 + 3))); // 3√2 > 4
    }

    #[test]
    fn erosion_treats_border_as_background() {
        let m = rect_mask(8, 8, Rect::new(0, 0, 8, 8));
        let e = erode(&m, Structuring::Square(1));
        // Border ring erodes away.
        assert_eq!(e.count_ones(), 36);
        assert!(!e.get(0, 0));
        assert!(e.get(1, 1));
    }

    #[test]
    fn dilation_erosion_duality_on_interior() {
        // dilate(mask) == !erode(!mask) away from the border.
        let m = rect_mask(24, 24, Rect::new(9, 9, 15, 15));
        let d = dilate(&m, Structuring::Disk(2));
        let mut inv = BitGrid::new(24, 24);
        for y in 0..24 {
            for x in 0..24 {
                inv.set(x, y, !m.get(x, y));
            }
        }
        let e = erode(&inv, Structuring::Disk(2));
        for y in 4..20 {
            for x in 4..20 {
                assert_eq!(d.get(x, y), !e.get(x, y), "at ({x},{y})");
            }
        }
    }

    #[test]
    fn zero_radius_is_identity() {
        let m = rect_mask(8, 8, Rect::new(2, 2, 5, 7));
        assert_eq!(dilate(&m, Structuring::Square(0)), m);
        assert_eq!(erode(&m, Structuring::Disk(0)), m);
    }
}
