//! Morphological skeletonization (Algorithm 1 line 7: `findSkeleton`).
//!
//! Zhang–Suen thinning: iteratively peels boundary pixels that do not
//! break 8-connectivity until a one-pixel-wide, 8-connected skeleton
//! remains — exactly the "connected curve in the pixel grid" the paper's
//! DFS point sampling walks (§3, Figure 2(a)).

use crate::grid::{BitGrid, Point};

/// Computes the Zhang–Suen skeleton of `mask`.
///
/// The result is a subset of `mask` that is one pixel wide and preserves
/// the 8-connectivity of each region.
///
/// # Examples
///
/// ```
/// use cfaopc_grid::{skeletonize, BitGrid, fill_rect, Rect};
///
/// let mut m = BitGrid::new(32, 16);
/// fill_rect(&mut m, Rect::new(2, 5, 30, 11)); // a fat horizontal bar
/// let s = skeletonize(&m);
/// assert!(s.count_ones() > 0);
/// assert!(s.count_ones() < m.count_ones() / 3);
/// ```
pub fn skeletonize(mask: &BitGrid) -> BitGrid {
    let mut img = mask.clone();
    let (w, h) = (img.width(), img.height());
    let mut to_clear: Vec<(usize, usize)> = Vec::new();
    loop {
        let mut changed = false;
        for sub_iteration in 0..2 {
            to_clear.clear();
            for y in 0..h {
                for x in 0..w {
                    if img.get(x, y) && removable(&img, x as i32, y as i32, sub_iteration) {
                        to_clear.push((x, y));
                    }
                }
            }
            if !to_clear.is_empty() {
                changed = true;
                for &(x, y) in &to_clear {
                    img.set(x, y, false);
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Zhang–Suen erases 2x2 blocks completely; every input region must
    // keep at least one skeleton pixel (Algorithm 1 samples a point per
    // region), so reinstate the deepest pixel of any vanished region.
    let regions =
        crate::components::connected_components(mask, crate::components::Connectivity::Eight);
    for region in &regions.regions {
        if region.points.iter().any(|&p| img.at(p)) {
            continue;
        }
        let depth = crate::distance::interior_distance(&region.to_mask(w, h));
        let deepest = region
            .points
            .iter()
            .copied()
            .max_by(|a, b| {
                let da = depth[(a.x as usize, a.y as usize)];
                let db = depth[(b.x as usize, b.y as usize)];
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("regions are nonempty");
        img.set_at(deepest, true);
    }
    img
}

/// Neighbourhood in Zhang–Suen order: P2..P9 clockwise starting north.
fn neighbours(img: &BitGrid, x: i32, y: i32) -> [bool; 8] {
    [
        img.at(Point::new(x, y - 1)),     // P2 N
        img.at(Point::new(x + 1, y - 1)), // P3 NE
        img.at(Point::new(x + 1, y)),     // P4 E
        img.at(Point::new(x + 1, y + 1)), // P5 SE
        img.at(Point::new(x, y + 1)),     // P6 S
        img.at(Point::new(x - 1, y + 1)), // P7 SW
        img.at(Point::new(x - 1, y)),     // P8 W
        img.at(Point::new(x - 1, y - 1)), // P9 NW
    ]
}

fn removable(img: &BitGrid, x: i32, y: i32, sub_iteration: usize) -> bool {
    let p = neighbours(img, x, y);
    let b: usize = p.iter().filter(|&&v| v).count();
    if !(2..=6).contains(&b) {
        return false;
    }
    // A(P1): 0→1 transitions around the ring.
    let a = (0..8).filter(|&i| !p[i] && p[(i + 1) % 8]).count();
    if a != 1 {
        return false;
    }
    let (p2, p4, p6, p8) = (p[0], p[2], p[4], p[6]);
    if sub_iteration == 0 {
        !(p4 && p6 && (p2 || p8))
    } else {
        !(p2 && p8 && (p4 || p6))
    }
}

/// Returns the skeleton pixels that have exactly one 8-neighbour on the
/// skeleton (curve endpoints) — useful for seeding deterministic walks.
pub fn endpoints(skeleton: &BitGrid) -> Vec<Point> {
    let mut out = Vec::new();
    for y in 0..skeleton.height() as i32 {
        for x in 0..skeleton.width() as i32 {
            let p = Point::new(x, y);
            if !skeleton.at(p) {
                continue;
            }
            let n = neighbours(skeleton, x, y).iter().filter(|&&v| v).count();
            if n == 1 {
                out.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{connected_components, Connectivity};
    use crate::raster::{fill_circle, fill_rect, Rect};

    #[test]
    fn empty_mask_has_empty_skeleton() {
        let m = BitGrid::new(16, 16);
        assert!(skeletonize(&m).is_clear());
    }

    #[test]
    fn single_pixel_survives() {
        let mut m = BitGrid::new(8, 8);
        m.set(4, 4, true);
        let s = skeletonize(&m);
        assert_eq!(s.count_ones(), 1);
        assert!(s.get(4, 4));
    }

    #[test]
    fn horizontal_bar_thins_to_a_line() {
        let mut m = BitGrid::new(64, 32);
        fill_rect(&mut m, Rect::new(4, 12, 60, 19)); // 7 px tall
        let s = skeletonize(&m);
        // Skeleton should be ~1 px thick: per column in the interior, at
        // most 2 set pixels (Zhang-Suen can leave short staircases).
        for x in 10..54 {
            let col: usize = (0..32).filter(|&y| s.get(x, y)).count();
            assert!(
                (1..=2).contains(&col),
                "column {x} has {col} skeleton pixels"
            );
        }
    }

    #[test]
    fn skeleton_is_subset_of_mask() {
        let mut m = BitGrid::new(48, 48);
        fill_circle(&mut m, Point::new(24, 24), 10);
        let s = skeletonize(&m);
        for p in s.ones() {
            assert!(m.at(p));
        }
    }

    #[test]
    fn skeleton_preserves_connectivity() {
        // An L-shaped bar must stay one connected skeleton.
        let mut m = BitGrid::new(64, 64);
        fill_rect(&mut m, Rect::new(8, 8, 16, 56));
        fill_rect(&mut m, Rect::new(8, 48, 56, 56));
        let regions_before = connected_components(&m, Connectivity::Eight).regions.len();
        let s = skeletonize(&m);
        let regions_after = connected_components(&s, Connectivity::Eight).regions.len();
        assert_eq!(regions_before, 1);
        assert_eq!(regions_after, 1);
        assert!(s.count_ones() > 40);
    }

    #[test]
    fn disk_skeleton_is_small_and_central() {
        let mut m = BitGrid::new(40, 40);
        fill_circle(&mut m, Point::new(20, 20), 9);
        let s = skeletonize(&m);
        assert!(s.count_ones() >= 1);
        assert!(
            s.count_ones() <= 16,
            "disk skeleton too big: {}",
            s.count_ones()
        );
        for p in s.ones() {
            assert!(
                p.dist(Point::new(20, 20)) <= 4.0,
                "skeleton pixel {p} far from center"
            );
        }
    }

    #[test]
    fn endpoints_of_straight_line() {
        let mut m = BitGrid::new(32, 8);
        for x in 4..28 {
            m.set(x, 4, true);
        }
        let ends = endpoints(&m);
        assert_eq!(ends.len(), 2);
        assert!(ends.contains(&Point::new(4, 4)));
        assert!(ends.contains(&Point::new(27, 4)));
    }

    #[test]
    fn two_regions_keep_two_skeletons() {
        let mut m = BitGrid::new(64, 32);
        fill_rect(&mut m, Rect::new(2, 4, 28, 12));
        fill_rect(&mut m, Rect::new(36, 18, 60, 26));
        let s = skeletonize(&m);
        let l = connected_components(&s, Connectivity::Eight);
        assert_eq!(l.regions.len(), 2);
    }
}
