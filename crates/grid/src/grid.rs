//! Dense row-major 2-D grids.

use std::fmt;
use std::ops::{Index, IndexMut};

/// An integer pixel coordinate.
///
/// Signed so intermediate geometry (circle centers pushed past an edge,
/// skeleton neighbours, window corners) can go off-grid without wrapping;
/// grids reject out-of-range access instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Column (x) coordinate.
    pub x: i32,
    /// Row (y) coordinate.
    pub y: i32,
}

impl Point {
    /// Creates a point from its column/row coordinates.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sqr(self, other: Point) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self.dist_sqr(other) as f64).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

/// A dense row-major `height × width` grid of `T`.
///
/// This is the pixel canvas every stage of the pipeline shares: masks,
/// aerial images, gradients, label maps.
///
/// # Examples
///
/// ```
/// use cfaopc_grid::{Grid2D, Point};
///
/// let mut g = Grid2D::new(4, 4, 0u8);
/// g[(1, 2)] = 7; // (x, y) indexing
/// assert_eq!(g.get(Point::new(1, 2)), Some(&7));
/// assert_eq!(g.get(Point::new(-1, 0)), None);
/// ```
#[derive(Clone, PartialEq)]
pub struct Grid2D<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Grid2D<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grid2D({}x{})", self.width, self.height)
    }
}

impl<T: Clone> Grid2D<T> {
    /// Creates a grid filled with `fill`.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        Grid2D {
            width,
            height,
            data: vec![fill; width * height],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            width * height,
            "buffer length must equal width*height"
        );
        Grid2D {
            width,
            height,
            data,
        }
    }

    /// Resets every cell to `value`.
    pub fn fill(&mut self, value: T) {
        for v in &mut self.data {
            *v = value.clone();
        }
    }
}

impl<T> Grid2D<T> {
    /// Grid width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the grid has zero cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns `true` if `p` lies on the grid.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as usize) < self.width && (p.y as usize) < self.height
    }

    /// Flat row-major index of an on-grid point.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Borrow of the cell at `p`, or `None` when off-grid.
    #[inline]
    pub fn get(&self, p: Point) -> Option<&T> {
        if self.contains(p) {
            Some(&self.data[p.y as usize * self.width + p.x as usize])
        } else {
            None
        }
    }

    /// Mutable borrow of the cell at `p`, or `None` when off-grid.
    #[inline]
    pub fn get_mut(&mut self, p: Point) -> Option<&mut T> {
        if self.contains(p) {
            Some(&mut self.data[p.y as usize * self.width + p.x as usize])
        } else {
            None
        }
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid and returns its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over `(Point, &T)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Point, &T)> {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (Point::new((i % w) as i32, (i / w) as i32), v))
    }

    /// Borrow of row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Applies `f` to every cell, producing a same-shape grid.
    pub fn map<U, F: FnMut(&T) -> U>(&self, mut f: F) -> Grid2D<U> {
        Grid2D {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(&mut f).collect(),
        }
    }
}

impl<T> Index<(usize, usize)> for Grid2D<T> {
    type Output = T;
    /// Indexes by `(x, y)`.
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        &self.data[self.idx(x, y)]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid2D<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        let i = self.idx(x, y);
        &mut self.data[i]
    }
}

/// A binary pixel mask.
///
/// Thin wrapper over `Grid2D<bool>` with set-algebra helpers used by the
/// fracturing and metric code (`|C(u,r) ∩ A_i|` cover rates, mask unions).
///
/// # Examples
///
/// ```
/// use cfaopc_grid::BitGrid;
///
/// let mut a = BitGrid::new(8, 8);
/// a.set(2, 2, true);
/// let mut b = BitGrid::new(8, 8);
/// b.set(2, 2, true);
/// b.set(3, 3, true);
/// assert_eq!(a.intersection_count(&b), 1);
/// assert_eq!(a.union(&b).count_ones(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub struct BitGrid {
    inner: Grid2D<bool>,
}

impl fmt::Debug for BitGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitGrid({}x{}, {} set)",
            self.width(),
            self.height(),
            self.count_ones()
        )
    }
}

impl BitGrid {
    /// Creates an all-clear mask.
    pub fn new(width: usize, height: usize) -> Self {
        BitGrid {
            inner: Grid2D::new(width, height, false),
        }
    }

    /// Builds a mask by thresholding a real-valued grid at `threshold`
    /// (strictly greater, matching the resist model of paper Eq. 2).
    pub fn from_threshold(grid: &Grid2D<f64>, threshold: f64) -> Self {
        BitGrid {
            inner: grid.map(|&v| v > threshold),
        }
    }

    /// Mask width.
    #[inline]
    pub fn width(&self) -> usize {
        self.inner.width()
    }

    /// Mask height.
    #[inline]
    pub fn height(&self) -> usize {
        self.inner.height()
    }

    /// Returns `true` if `p` lies on the grid.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.inner.contains(p)
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds; use [`BitGrid::at`] for checked access.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.inner[(x, y)]
    }

    /// Checked access: `false` off-grid.
    #[inline]
    pub fn at(&self, p: Point) -> bool {
        self.inner.get(p).copied().unwrap_or(false)
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        self.inner[(x, y)] = value;
    }

    /// Sets the pixel at `p` when on-grid; off-grid writes are ignored.
    #[inline]
    pub fn set_at(&mut self, p: Point, value: bool) {
        if let Some(v) = self.inner.get_mut(p) {
            *v = value;
        }
    }

    /// Number of set pixels.
    pub fn count_ones(&self) -> usize {
        self.inner.as_slice().iter().filter(|&&b| b).count()
    }

    /// Returns `true` when no pixel is set.
    pub fn is_clear(&self) -> bool {
        !self.inner.as_slice().iter().any(|&b| b)
    }

    /// Set pixels as points, row-major order.
    pub fn ones(&self) -> Vec<Point> {
        self.inner
            .iter()
            .filter_map(|(p, &b)| if b { Some(p) } else { None })
            .collect()
    }

    /// `|self ∩ other|`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn intersection_count(&self, other: &BitGrid) -> usize {
        self.check_shape(other);
        self.inner
            .as_slice()
            .iter()
            .zip(other.inner.as_slice())
            .filter(|(&a, &b)| a && b)
            .count()
    }

    /// Pixel-wise union.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn union(&self, other: &BitGrid) -> BitGrid {
        self.check_shape(other);
        let data = self
            .inner
            .as_slice()
            .iter()
            .zip(other.inner.as_slice())
            .map(|(&a, &b)| a || b)
            .collect();
        BitGrid {
            inner: Grid2D::from_vec(self.width(), self.height(), data),
        }
    }

    /// Merges `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn union_with(&mut self, other: &BitGrid) {
        self.check_shape(other);
        for (a, &b) in self
            .inner
            .as_mut_slice()
            .iter_mut()
            .zip(other.inner.as_slice())
        {
            *a = *a || b;
        }
    }

    /// Pixel-wise symmetric difference (XOR) count — the discrete form of
    /// `‖A − B‖₂²` for binary images, used by the L2 and PVB metrics.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn xor_count(&self, other: &BitGrid) -> usize {
        self.check_shape(other);
        self.inner
            .as_slice()
            .iter()
            .zip(other.inner.as_slice())
            .filter(|(&a, &b)| a != b)
            .count()
    }

    /// Converts to a real-valued grid (`1.0` / `0.0`).
    pub fn to_real(&self) -> Grid2D<f64> {
        self.inner.map(|&b| if b { 1.0 } else { 0.0 })
    }

    /// View as the underlying boolean grid.
    pub fn as_grid(&self) -> &Grid2D<bool> {
        &self.inner
    }

    /// Consumes the mask and returns the underlying boolean grid.
    pub fn into_grid(self) -> Grid2D<bool> {
        self.inner
    }

    fn check_shape(&self, other: &BitGrid) {
        assert!(
            self.width() == other.width() && self.height() == other.height(),
            "shape mismatch: {}x{} vs {}x{}",
            self.width(),
            self.height(),
            other.width(),
            other.height()
        );
    }
}

impl From<Grid2D<bool>> for BitGrid {
    fn from(inner: Grid2D<bool>) -> Self {
        BitGrid { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_indexing_roundtrip() {
        let mut g = Grid2D::new(3, 2, 0i32);
        g[(2, 1)] = 5;
        assert_eq!(g[(2, 1)], 5);
        assert_eq!(g.get(Point::new(2, 1)), Some(&5));
        assert_eq!(g.get(Point::new(3, 1)), None);
        assert_eq!(g.get(Point::new(0, -1)), None);
    }

    #[test]
    fn from_vec_checks_len() {
        let g = Grid2D::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(g[(1, 1)], 4);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Grid2D::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn iter_yields_row_major_points() {
        let g = Grid2D::from_vec(2, 2, vec![10, 11, 12, 13]);
        let pts: Vec<(Point, i32)> = g.iter().map(|(p, &v)| (p, v)).collect();
        assert_eq!(pts[0], (Point::new(0, 0), 10));
        assert_eq!(pts[1], (Point::new(1, 0), 11));
        assert_eq!(pts[2], (Point::new(0, 1), 12));
        assert_eq!(pts[3], (Point::new(1, 1), 13));
    }

    #[test]
    fn map_preserves_shape() {
        let g = Grid2D::new(4, 3, 2u8);
        let h = g.map(|&v| v as f64 * 1.5);
        assert_eq!(h.width(), 4);
        assert_eq!(h.height(), 3);
        assert_eq!(h[(3, 2)], 3.0);
    }

    #[test]
    fn bitgrid_set_algebra() {
        let mut a = BitGrid::new(4, 4);
        let mut b = BitGrid::new(4, 4);
        a.set(0, 0, true);
        a.set(1, 1, true);
        b.set(1, 1, true);
        b.set(2, 2, true);
        assert_eq!(a.count_ones(), 2);
        assert_eq!(a.intersection_count(&b), 1);
        assert_eq!(a.union(&b).count_ones(), 3);
        assert_eq!(a.xor_count(&b), 2);
    }

    #[test]
    fn bitgrid_threshold_is_strict() {
        let g = Grid2D::from_vec(2, 1, vec![0.5, 0.6]);
        let m = BitGrid::from_threshold(&g, 0.5);
        assert!(!m.get(0, 0));
        assert!(m.get(1, 0));
    }

    #[test]
    fn bitgrid_off_grid_reads_false_writes_ignored() {
        let mut m = BitGrid::new(2, 2);
        assert!(!m.at(Point::new(-1, 0)));
        m.set_at(Point::new(5, 5), true);
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn point_distance() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.dist_sqr(b), 25);
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn row_access() {
        let g = Grid2D::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(g.row(1), &[4, 5, 6]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Grid2D::new(2, 3, 0u8)), "Grid2D(2x3)");
        let b = BitGrid::new(2, 2);
        assert_eq!(format!("{b:?}"), "BitGrid(2x2, 0 set)");
    }
}
