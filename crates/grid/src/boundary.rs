//! Boundary extraction: the set of mask pixels adjacent to background.
//!
//! The EPE metric measures distances from target-edge sample points to
//! the printed contour; [`boundary_pixels`] provides that contour.

use crate::grid::{BitGrid, Point};

/// Returns a mask of the pixels of `mask` that have at least one
/// 4-neighbour outside the mask (off-grid counts as outside).
pub fn boundary_pixels(mask: &BitGrid) -> BitGrid {
    let (w, h) = (mask.width(), mask.height());
    let mut out = BitGrid::new(w, h);
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let p = Point::new(x, y);
            if !mask.at(p) {
                continue;
            }
            let is_boundary = [(1, 0), (-1, 0), (0, 1), (0, -1)]
                .iter()
                .any(|&(dx, dy)| !mask.at(Point::new(x + dx, y + dy)));
            if is_boundary {
                out.set(x as usize, y as usize, true);
            }
        }
    }
    out
}

/// Total boundary pixel count — a cheap perimeter proxy used by mask
/// complexity diagnostics.
pub fn perimeter(mask: &BitGrid) -> usize {
    boundary_pixels(mask).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::{fill_circle, fill_rect, Rect};

    #[test]
    fn rect_boundary_is_its_ring() {
        let mut m = BitGrid::new(16, 16);
        fill_rect(&mut m, Rect::new(4, 4, 12, 12));
        let b = boundary_pixels(&m);
        // 8x8 rect: ring = 64 - 36 interior
        assert_eq!(b.count_ones(), 28);
        assert!(b.get(4, 4));
        assert!(!b.get(7, 7));
    }

    #[test]
    fn grid_border_counts_as_outside() {
        let mut m = BitGrid::new(4, 4);
        fill_rect(&mut m, Rect::new(0, 0, 4, 4));
        let b = boundary_pixels(&m);
        assert_eq!(b.count_ones(), 12);
        assert!(!b.get(1, 1));
    }

    #[test]
    fn empty_mask_empty_boundary() {
        let m = BitGrid::new(8, 8);
        assert!(boundary_pixels(&m).is_clear());
        assert_eq!(perimeter(&m), 0);
    }

    #[test]
    fn circle_boundary_scales_with_radius() {
        let mut small = BitGrid::new(64, 64);
        fill_circle(&mut small, crate::grid::Point::new(32, 32), 8);
        let mut large = BitGrid::new(64, 64);
        fill_circle(&mut large, crate::grid::Point::new(32, 32), 16);
        let ps = perimeter(&small);
        let pl = perimeter(&large);
        assert!(pl > ps);
        // Perimeter grows roughly linearly with radius.
        let ratio = pl as f64 / ps as f64;
        assert!((1.5..=2.5).contains(&ratio), "ratio {ratio}");
    }
}
