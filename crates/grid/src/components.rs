//! Connected-component labeling (Algorithm 1 line 5:
//! `findConnectedRegions`).

use crate::grid::{BitGrid, Grid2D, Point};
use crate::raster::Rect;
use std::collections::VecDeque;

/// Pixel connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Connectivity {
    /// Von Neumann neighbourhood (up/down/left/right).
    Four,
    /// Moore neighbourhood (the paper's skeleton graph uses the eight
    /// pixels around each position, §3).
    #[default]
    Eight,
}

impl Connectivity {
    /// Neighbour offsets for this connectivity.
    pub fn offsets(self) -> &'static [(i32, i32)] {
        match self {
            Connectivity::Four => &[(1, 0), (-1, 0), (0, 1), (0, -1)],
            Connectivity::Eight => &[
                (1, 0),
                (-1, 0),
                (0, 1),
                (0, -1),
                (1, 1),
                (1, -1),
                (-1, 1),
                (-1, -1),
            ],
        }
    }
}

/// One connected region of set pixels.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region label (index into the label map, starting at 1).
    pub label: u32,
    /// All pixels of the region, in discovery order.
    pub points: Vec<Point>,
    /// Tight bounding box.
    pub bbox: Rect,
}

impl Region {
    /// Pixel count.
    pub fn area(&self) -> usize {
        self.points.len()
    }

    /// Renders the region back into a standalone mask of the given shape.
    pub fn to_mask(&self, width: usize, height: usize) -> BitGrid {
        let mut m = BitGrid::new(width, height);
        for &p in &self.points {
            m.set_at(p, true);
        }
        m
    }
}

/// Result of labeling: per-pixel labels (0 = background) and the regions.
#[derive(Debug, Clone)]
pub struct Labeling {
    /// Label map; `0` is background, regions are `1..=regions.len()`.
    pub labels: Grid2D<u32>,
    /// Regions indexed by `label - 1`.
    pub regions: Vec<Region>,
}

/// Labels the connected regions of `mask` by BFS flood fill.
///
/// Regions are reported in raster order of their first pixel, so the
/// result is deterministic.
///
/// # Examples
///
/// ```
/// use cfaopc_grid::{BitGrid, connected_components, Connectivity};
///
/// let mut m = BitGrid::new(8, 8);
/// m.set(0, 0, true);
/// m.set(1, 1, true); // touches (0,0) diagonally
/// m.set(5, 5, true);
/// let four = connected_components(&m, Connectivity::Four);
/// let eight = connected_components(&m, Connectivity::Eight);
/// assert_eq!(four.regions.len(), 3);
/// assert_eq!(eight.regions.len(), 2);
/// ```
pub fn connected_components(mask: &BitGrid, conn: Connectivity) -> Labeling {
    let (w, h) = (mask.width(), mask.height());
    let mut labels = Grid2D::new(w, h, 0u32);
    let mut regions = Vec::new();
    let mut queue = VecDeque::new();
    for y in 0..h {
        for x in 0..w {
            if !mask.get(x, y) || labels[(x, y)] != 0 {
                continue;
            }
            let label = regions.len() as u32 + 1;
            let seed = Point::new(x as i32, y as i32);
            labels[(x, y)] = label;
            queue.push_back(seed);
            let mut points = Vec::new();
            let (mut x0, mut y0, mut x1, mut y1) = (seed.x, seed.y, seed.x + 1, seed.y + 1);
            while let Some(p) = queue.pop_front() {
                points.push(p);
                x0 = x0.min(p.x);
                y0 = y0.min(p.y);
                x1 = x1.max(p.x + 1);
                y1 = y1.max(p.y + 1);
                for &(dx, dy) in conn.offsets() {
                    let q = Point::new(p.x + dx, p.y + dy);
                    if mask.at(q) {
                        if let Some(l) = labels.get_mut(q) {
                            if *l == 0 {
                                *l = label;
                                queue.push_back(q);
                            }
                        }
                    }
                }
            }
            regions.push(Region {
                label,
                points,
                bbox: Rect::new(x0, y0, x1, y1),
            });
        }
    }
    Labeling { labels, regions }
}

/// Removes connected regions smaller than `min_area` pixels.
///
/// Used as mask-writability hygiene: features smaller than the minimum
/// writable shot cannot be manufactured and only inflate fracture
/// counts.
pub fn remove_small_regions(mask: &BitGrid, min_area: usize, conn: Connectivity) -> BitGrid {
    let labeling = connected_components(mask, conn);
    let mut out = BitGrid::new(mask.width(), mask.height());
    for region in &labeling.regions {
        if region.area() >= min_area {
            for &p in &region.points {
                out.set_at(p, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::{fill_circle, fill_rect};

    #[test]
    fn remove_small_regions_keeps_big_drops_small() {
        let mut m = BitGrid::new(32, 32);
        fill_rect(&mut m, Rect::new(2, 2, 12, 12)); // 100 px
        m.set(20, 20, true); // 1 px speck
        m.set(25, 25, true);
        m.set(25, 26, true); // 2 px speck
        let cleaned = remove_small_regions(&m, 3, Connectivity::Eight);
        assert_eq!(cleaned.count_ones(), 100);
        assert!(!cleaned.get(20, 20));
        assert!(!cleaned.get(25, 25));
    }

    #[test]
    fn remove_small_regions_zero_threshold_is_identity() {
        let mut m = BitGrid::new(8, 8);
        m.set(1, 1, true);
        assert_eq!(remove_small_regions(&m, 0, Connectivity::Four), m);
        assert_eq!(remove_small_regions(&m, 1, Connectivity::Four), m);
    }

    #[test]
    fn empty_mask_has_no_regions() {
        let m = BitGrid::new(8, 8);
        let l = connected_components(&m, Connectivity::Eight);
        assert!(l.regions.is_empty());
        assert!(l.labels.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn single_rect_is_one_region_with_bbox() {
        let mut m = BitGrid::new(16, 16);
        fill_rect(&mut m, Rect::new(3, 4, 9, 10));
        let l = connected_components(&m, Connectivity::Four);
        assert_eq!(l.regions.len(), 1);
        let r = &l.regions[0];
        assert_eq!(r.area(), 36);
        assert_eq!(r.bbox, Rect::new(3, 4, 9, 10));
        assert_eq!(r.label, 1);
    }

    #[test]
    fn two_disjoint_circles() {
        let mut m = BitGrid::new(32, 32);
        fill_circle(&mut m, Point::new(6, 6), 3);
        fill_circle(&mut m, Point::new(24, 24), 4);
        let l = connected_components(&m, Connectivity::Eight);
        assert_eq!(l.regions.len(), 2);
        assert_eq!(
            l.regions.iter().map(Region::area).sum::<usize>(),
            m.count_ones()
        );
    }

    #[test]
    fn labels_match_regions() {
        let mut m = BitGrid::new(16, 16);
        fill_rect(&mut m, Rect::new(0, 0, 4, 4));
        fill_rect(&mut m, Rect::new(8, 8, 12, 12));
        let l = connected_components(&m, Connectivity::Four);
        for region in &l.regions {
            for &p in &region.points {
                assert_eq!(l.labels[(p.x as usize, p.y as usize)], region.label);
            }
        }
    }

    #[test]
    fn touching_corner_differs_by_connectivity() {
        let mut m = BitGrid::new(4, 4);
        m.set(0, 0, true);
        m.set(1, 1, true);
        assert_eq!(
            connected_components(&m, Connectivity::Four).regions.len(),
            2
        );
        assert_eq!(
            connected_components(&m, Connectivity::Eight).regions.len(),
            1
        );
    }

    #[test]
    fn region_to_mask_roundtrip() {
        let mut m = BitGrid::new(16, 16);
        fill_circle(&mut m, Point::new(8, 8), 5);
        let l = connected_components(&m, Connectivity::Eight);
        assert_eq!(l.regions.len(), 1);
        let back = l.regions[0].to_mask(16, 16);
        assert_eq!(back, m);
    }

    #[test]
    fn raster_order_is_deterministic() {
        let mut m = BitGrid::new(8, 8);
        m.set(7, 0, true);
        m.set(0, 7, true);
        let l = connected_components(&m, Connectivity::Four);
        // (7,0) is encountered first in raster order.
        assert_eq!(l.regions[0].points[0], Point::new(7, 0));
        assert_eq!(l.regions[1].points[0], Point::new(0, 7));
    }
}
