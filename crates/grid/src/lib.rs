//! Pixel-grid geometry substrate for the CFAOPC workspace.
//!
//! Masks, aerial images and gradients all live on a dense pixel grid; this
//! crate provides the shared machinery:
//!
//! * [`Grid2D`] / [`BitGrid`] — dense real-valued and binary canvases,
//! * [`Rect`], [`fill_rect`], [`fill_circle`], [`fill_rectilinear_polygon`]
//!   — rasterization of targets and circular shots,
//! * [`connected_components`] — Algorithm 1's `findConnectedRegions`,
//! * [`skeletonize`] — Algorithm 1's `findSkeleton` (Zhang–Suen thinning),
//! * [`dilate`]/[`erode`]/[`open`]/[`close`] — binary morphology,
//! * [`distance_to`]/[`interior_distance`] — exact Euclidean distance
//!   transforms for EPE and radius bounds,
//! * [`boundary_pixels`] — printed-contour extraction.
//!
//! # Examples
//!
//! Fracture-style bookkeeping — rasterize a circle and measure how much of
//! it lands inside a mask region (the Algorithm 1 cover rate):
//!
//! ```
//! use cfaopc_grid::{disk_area, disk_points, fill_rect, BitGrid, Point, Rect};
//!
//! let mut mask = BitGrid::new(64, 64);
//! fill_rect(&mut mask, Rect::new(8, 8, 56, 40));
//! let center = Point::new(30, 24);
//! let r = 10;
//! let inside = disk_points(center, r, 64, 64)
//!     .into_iter()
//!     .filter(|&p| mask.at(p))
//!     .count();
//! let cover_rate = inside as f64 / disk_area(r) as f64;
//! assert!(cover_rate > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod components;
mod distance;
mod grid;
mod morph;
mod raster;
mod skeleton;

pub use boundary::{boundary_pixels, perimeter};
pub use components::{connected_components, remove_small_regions, Connectivity, Labeling, Region};
pub use distance::{distance_to, interior_distance, squared_distance_to};
pub use grid::{BitGrid, Grid2D, Point};
pub use morph::{close, dilate, erode, open, Structuring};
pub use raster::{
    disk_area, disk_points, fill_circle, fill_rect, fill_rectilinear_polygon, upsample_bilinear,
    Rect,
};
pub use skeleton::{endpoints, skeletonize};
