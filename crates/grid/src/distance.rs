//! Exact Euclidean distance transforms (Felzenszwalb–Huttenlocher).
//!
//! The EPE metric asks, for a sample point on a target edge, how far the
//! printed contour is; the squared-distance transform of the contour
//! answers that in O(n) per pixel. CircleRule's radius selection also
//! uses the interior distance to bound the largest circle that fits.

use crate::grid::{BitGrid, Grid2D};

const INF: f64 = 1e20;

/// 1-D squared-distance transform (lower envelope of parabolas).
fn dt1d(f: &[f64], out: &mut [f64], v: &mut [usize], z: &mut [f64]) {
    let n = f.len();
    debug_assert!(out.len() == n && v.len() >= n && z.len() > n);
    let mut k = 0usize;
    v[0] = 0;
    z[0] = -INF;
    z[1] = INF;
    for q in 1..n {
        loop {
            let p = v[k];
            let s = ((f[q] + (q * q) as f64) - (f[p] + (p * p) as f64))
                / (2.0 * q as f64 - 2.0 * p as f64);
            if s <= z[k] {
                debug_assert!(k > 0);
                k -= 1;
            } else {
                k += 1;
                v[k] = q;
                z[k] = s;
                z[k + 1] = INF;
                break;
            }
        }
    }
    k = 0;
    for (q, slot) in out.iter_mut().enumerate() {
        while z[k + 1] < q as f64 {
            k += 1;
        }
        let p = v[k];
        let d = q as f64 - p as f64;
        *slot = d * d + f[p];
    }
}

/// Squared Euclidean distance from every pixel to the nearest **set**
/// pixel of `sites`. Pixels of `sites` map to `0`; if `sites` is empty
/// every pixel maps to a value ≥ `1e20` (effectively infinity).
pub fn squared_distance_to(sites: &BitGrid) -> Grid2D<f64> {
    let (w, h) = (sites.width(), sites.height());
    let mut field = Grid2D::new(w, h, 0.0f64);
    for y in 0..h {
        for x in 0..w {
            field[(x, y)] = if sites.get(x, y) { 0.0 } else { INF };
        }
    }
    if w == 0 || h == 0 {
        return field;
    }
    let m = w.max(h);
    let mut buf = vec![0.0f64; m];
    let mut out = vec![0.0f64; m];
    let mut v = vec![0usize; m];
    let mut z = vec![0.0f64; m + 1];
    // Columns first.
    for x in 0..w {
        for y in 0..h {
            buf[y] = field[(x, y)];
        }
        dt1d(&buf[..h], &mut out[..h], &mut v, &mut z);
        for y in 0..h {
            field[(x, y)] = out[y];
        }
    }
    // Then rows.
    for y in 0..h {
        buf[..w].copy_from_slice(field.row(y));
        dt1d(&buf[..w], &mut out[..w], &mut v, &mut z);
        for x in 0..w {
            field[(x, y)] = out[x];
        }
    }
    field
}

/// Euclidean distance (not squared) to the nearest set pixel of `sites`.
pub fn distance_to(sites: &BitGrid) -> Grid2D<f64> {
    squared_distance_to(sites).map(|&d| d.sqrt())
}

/// For every **set** pixel of `mask`, the Euclidean distance to the
/// nearest background pixel (the "interior radius"); background pixels
/// map to `0`. The largest inscribed circle at `p` has radius
/// `interior(p) - 1` (in whole pixels).
pub fn interior_distance(mask: &BitGrid) -> Grid2D<f64> {
    let (w, h) = (mask.width(), mask.height());
    let mut background = BitGrid::new(w, h);
    for y in 0..h {
        for x in 0..w {
            background.set(x, y, !mask.get(x, y));
        }
    }
    let mut d = distance_to(&background);
    // A mask that fills the whole grid has no background; treat the grid
    // border as background so radii stay finite.
    if background.is_clear() {
        for y in 0..h {
            for x in 0..w {
                let b = (x.min(w - 1 - x).min(y).min(h - 1 - y) + 1) as f64;
                d[(x, y)] = b;
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Point;
    use crate::raster::{fill_circle, fill_rect, Rect};

    #[test]
    fn distance_to_single_site() {
        let mut sites = BitGrid::new(9, 9);
        sites.set(4, 4, true);
        let d = distance_to(&sites);
        assert_eq!(d[(4, 4)], 0.0);
        assert!((d[(7, 8)] - 5.0).abs() < 1e-9);
        assert!((d[(0, 0)] - 32f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn distance_matches_brute_force() {
        let mut sites = BitGrid::new(24, 16);
        sites.set(3, 2, true);
        sites.set(20, 13, true);
        sites.set(10, 7, true);
        let d = squared_distance_to(&sites);
        let pts = sites.ones();
        for y in 0..16 {
            for x in 0..24 {
                let p = Point::new(x as i32, y as i32);
                let brute = pts.iter().map(|s| p.dist_sqr(*s)).min().unwrap() as f64;
                assert!((d[(x, y)] - brute).abs() < 1e-6, "at ({x},{y})");
            }
        }
    }

    #[test]
    fn empty_sites_give_infinite_distance() {
        let sites = BitGrid::new(4, 4);
        let d = squared_distance_to(&sites);
        assert!(d.as_slice().iter().all(|&v| v >= 1e19));
    }

    #[test]
    fn interior_distance_of_rect() {
        let mut m = BitGrid::new(32, 32);
        fill_rect(&mut m, Rect::new(8, 8, 24, 24));
        let d = interior_distance(&m);
        // Center pixel is 8 px from the nearest background pixel.
        assert!((d[(15, 15)] - 8.0).abs() <= 2f64.sqrt());
        // Edge pixel is 1 away from background.
        assert_eq!(d[(8, 15)], 1.0);
        // Background maps to 0.
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn interior_distance_bounds_inscribed_circle() {
        let mut m = BitGrid::new(64, 64);
        fill_circle(&mut m, Point::new(32, 32), 14);
        let d = interior_distance(&m);
        let r_est = d[(32, 32)] - 1.0;
        // Largest inscribed circle at the center has radius 14.
        assert!((13.0..=15.0).contains(&r_est), "estimate {r_est}");
    }

    #[test]
    fn full_mask_uses_border_fallback() {
        let mut m = BitGrid::new(8, 8);
        fill_rect(&mut m, Rect::new(0, 0, 8, 8));
        let d = interior_distance(&m);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(3, 3)], 4.0);
        assert!(d.as_slice().iter().all(|&v| v.is_finite()));
    }
}
